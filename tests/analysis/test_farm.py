"""Crash semantics of the simulation farm (scheduler + spool service).

The tier-1 tests here inject real SIGKILLs into real worker processes
(via the ``REPRO_FARM_*`` environment hooks) and assert the scheduler's
contract: every surviving point completes and persists, the ledger
still audits clean, and results are bit-identical to the serial path.
"""

import json
import os

import pytest

from repro.analysis.experiments import ExperimentRunner
from repro.analysis.farm import (
    DEFAULT_MAX_RETRIES,
    FarmScheduler,
    FarmServer,
    SweepRequest,
    new_request_id,
    response_path,
    submit_request,
)
from repro.common.params import BASELINE
from repro.obs.ledger import check_complete, read_ledger, summarize

WLS = ["mcf", "x264"]
POLS = ["OOO", "RAR"]
N, W = 800, 300


def _matrix(tmp_path, *, jobs=2, ledger_name=None, cache=False, **kw):
    runner = ExperimentRunner(
        instructions=N, warmup=W,
        cache_path=os.path.join(str(tmp_path), "cache.json")
        if cache else None)
    ledger = (os.path.join(str(tmp_path), ledger_name)
              if ledger_name else None)
    out = runner.run_matrix(WLS, BASELINE, POLS, jobs=jobs,
                            ledger=ledger, **kw)
    return runner, out, ledger


class TestCrashRequeue:
    def test_sigkilled_worker_work_is_requeued_and_completes(
            self, tmp_path, monkeypatch):
        token = os.path.join(str(tmp_path), "crash.token")
        with open(token, "w"):
            pass
        monkeypatch.setenv("REPRO_FARM_CRASH_TOKEN", token)
        _, out, ledger = _matrix(tmp_path, ledger_name="led.jsonl",
                                 cache=True)
        # the injected death cost nothing: every point completed
        assert out.ok
        assert {p: sorted(out[p]) for p in POLS} == {
            p: sorted(WLS) for p in POLS}
        assert not os.path.exists(token)  # the token was consumed
        events = read_ledger(ledger)
        st = summarize(events)
        assert st.worker_deaths >= 1
        assert st.requeued >= 1
        assert check_complete(events) == []  # exactly-one-terminal holds
        # ...and the completed points reached the disk cache
        raw = json.load(open(os.path.join(str(tmp_path), "cache.json")))
        assert len(raw["data"]) == len(WLS) * len(POLS)

    def test_crashed_points_match_serial_results(self, tmp_path,
                                                 monkeypatch):
        serial = ExperimentRunner(instructions=N, warmup=W)
        a = serial.run_matrix(WLS, BASELINE, POLS)
        token = os.path.join(str(tmp_path), "crash.token")
        with open(token, "w"):
            pass
        monkeypatch.setenv("REPRO_FARM_CRASH_TOKEN", token)
        _, b, _ = _matrix(tmp_path)
        for p in POLS:
            for w in WLS:
                assert a[p][w] == b[p][w]


class TestQuarantine:
    def test_poison_point_is_quarantined_not_fatal(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FARM_POISON", "x264:RAR")
        _, out, ledger = _matrix(tmp_path, ledger_name="led.jsonl")
        assert len(out.failures) == 1
        f = out.failures[0]
        assert (f["workload"], f["policy"]) == ("x264", "RAR")
        assert f["quarantined"] is True
        assert "quarantined" in f["error"]
        # every sibling of the poison point still completed
        assert sorted(out["RAR"]) == ["mcf"]
        assert sorted(out["OOO"]) == sorted(WLS)
        events = read_ledger(ledger)
        st = summarize(events)
        assert st.quarantined == 1
        # the retry budget was actually spent before giving up
        assert st.worker_deaths == DEFAULT_MAX_RETRIES + 1
        assert check_complete(events) == []
        quarantines = [e for e in events
                       if e["ev"] == "point_quarantined"]
        assert len(quarantines) == 1
        assert quarantines[0]["policy"] == "RAR"
        with pytest.raises(RuntimeError, match="x264/RAR"):
            out.raise_if_failed()


class TestFarmEqualsSerial:
    def test_small_grid_bit_identical(self, tmp_path):
        serial = ExperimentRunner(instructions=N, warmup=W)
        a = serial.run_matrix(WLS, BASELINE, POLS)
        _, b, _ = _matrix(tmp_path, jobs=3)
        for p in POLS:
            for w in WLS:
                assert a[p][w] == b[p][w]

    def test_shared_warmup_grid_bit_identical(self, tmp_path):
        serial = ExperimentRunner(instructions=N, warmup=W)
        a = serial.run_matrix(WLS, BASELINE, POLS, share_warmup=True)
        _, b, _ = _matrix(tmp_path, share_warmup=True)
        for p in POLS:
            for w in WLS:
                assert a[p][w] == b[p][w]

    @pytest.mark.slow
    def test_golden_grid_bit_identical(self):
        """The farm must not perturb the frozen 25-point conformance
        grid: same fingerprints whether points run serially or across
        crash-tolerant workers."""
        from repro.validate.golden import (
            GOLDEN_INSTRUCTIONS, GOLDEN_MACHINES, GOLDEN_POLICIES,
            GOLDEN_WARMUP, GOLDEN_WORKLOAD,
        )
        for name, machine in GOLDEN_MACHINES.items():
            serial = ExperimentRunner(instructions=GOLDEN_INSTRUCTIONS,
                                      warmup=GOLDEN_WARMUP)
            farm = ExperimentRunner(instructions=GOLDEN_INSTRUCTIONS,
                                    warmup=GOLDEN_WARMUP)
            a = serial.run_matrix([GOLDEN_WORKLOAD], machine,
                                  list(GOLDEN_POLICIES))
            b = farm.run_matrix([GOLDEN_WORKLOAD], machine,
                                list(GOLDEN_POLICIES), jobs=2)
            for p in GOLDEN_POLICIES:
                assert a[p][GOLDEN_WORKLOAD] == b[p][GOLDEN_WORKLOAD], \
                    f"farm diverged on {name}/{p}"


class TestScheduler:
    def test_explicit_scheduler_reused_across_runs(self, tmp_path):
        """A long-lived scheduler (the ``repro serve`` shape) serves
        multiple run_matrix calls with the same worker pool."""
        r1 = ExperimentRunner(instructions=N, warmup=W)
        r2 = ExperimentRunner(instructions=N, warmup=W)
        with FarmScheduler(2) as scheduler:
            a = r1.run_matrix(WLS, BASELINE, ["OOO"], scheduler=scheduler)
            b = r2.run_matrix(WLS, BASELINE, ["RAR"], scheduler=scheduler)
        assert sorted(a["OOO"]) == sorted(WLS)
        assert sorted(b["RAR"]) == sorted(WLS)

    def test_run_on_empty_task_list(self):
        with FarmScheduler(1) as scheduler:
            report = scheduler.run([])
        assert report.points == 0
        assert report.worker_deaths == 0


class TestSpoolService:
    def _submit(self, spool, **kw):
        request = SweepRequest(
            request_id=new_request_id(), workloads=kw.pop("workloads", WLS),
            policies=kw.pop("policies", POLS), instructions=N, warmup=W,
            **kw)
        submit_request(spool, request)
        return request

    def test_round_trip(self, tmp_path):
        spool = os.path.join(str(tmp_path), "spool")
        request = self._submit(spool)
        ledger = os.path.join(str(tmp_path), "led.jsonl")
        server = FarmServer(spool, {"baseline": BASELINE}, jobs=2,
                            ledger=ledger)
        served = server.serve_forever(max_requests=1)
        assert served == 1
        response = json.load(open(response_path(spool, request.request_id)))
        assert response["status"] == "ok"
        assert len(response["results"]) == len(WLS) * len(POLS)
        assert response["failures"] == []
        # the claimed request file was retired from active/
        assert os.listdir(server.active_dir) == []
        events = read_ledger(ledger)
        assert any(e["ev"] == "request_received" for e in events)
        done = [e for e in events if e["ev"] == "request_done"]
        assert done and done[0]["status"] == "ok"

    def test_bad_request_rejected_server_survives(self, tmp_path):
        spool = os.path.join(str(tmp_path), "spool")
        bad = self._submit(spool, workloads=["no-such-workload"])
        import time
        time.sleep(0.02)  # distinct mtimes: bad claims first (FIFO)
        good = self._submit(spool, workloads=["mcf"], policies=["OOO"])
        server = FarmServer(spool, {"baseline": BASELINE}, jobs=1)
        assert server.serve_forever(max_requests=2) == 2
        rej = json.load(open(response_path(spool, bad.request_id)))
        assert rej["status"] == "rejected"
        assert "no-such-workload" in rej["error"]
        ok = json.load(open(response_path(spool, good.request_id)))
        assert ok["status"] == "ok" and len(ok["results"]) == 1

    def test_fast_mode_request_matches_serial(self, tmp_path):
        spool = os.path.join(str(tmp_path), "spool")
        request = self._submit(spool, workloads=["mcf"], policies=POLS,
                               warmup_mode="fast")
        server = FarmServer(spool, {"baseline": BASELINE}, jobs=2)
        assert server.serve_forever(max_requests=1) == 1
        response = json.load(open(response_path(spool, request.request_id)))
        assert response["status"] == "ok"
        assert response["warmup_mode"] == "fast"
        serial = ExperimentRunner(instructions=N, warmup=W).run_matrix(
            ["mcf"], BASELINE, POLS, warmup_mode="fast")
        got = {(r["policy"], r["workload"]): r
               for r in response["results"]}
        for p in POLS:
            assert got[(p, "mcf")] == serial[p]["mcf"].to_dict()

    def test_unknown_warmup_mode_rejected(self, tmp_path):
        spool = os.path.join(str(tmp_path), "spool")
        bad = self._submit(spool, workloads=["mcf"], policies=["OOO"],
                           warmup_mode="warp")
        server = FarmServer(spool, {"baseline": BASELINE}, jobs=1)
        assert server.serve_forever(max_requests=1) == 1
        rej = json.load(open(response_path(spool, bad.request_id)))
        assert rej["status"] == "rejected"
        assert "warp" in rej["error"]

    def test_orphan_recovery(self, tmp_path):
        spool = os.path.join(str(tmp_path), "spool")
        request = self._submit(spool, workloads=["mcf"], policies=["OOO"])
        server = FarmServer(spool, {"baseline": BASELINE}, jobs=1)
        # simulate a server that died after claiming: queue -> active
        name = f"{request.request_id}.json"
        os.replace(os.path.join(server.queue_dir, name),
                   os.path.join(server.active_dir, name))
        assert server.pending() == []
        recovered = server.recover_orphans()
        assert [os.path.basename(p) for p in recovered] == [name]
        assert [os.path.basename(p) for p in server.pending()] == [name]
        # serve_forever recovers on its own too
        os.replace(os.path.join(server.queue_dir, name),
                   os.path.join(server.active_dir, name))
        assert server.serve_forever(max_requests=1) == 1
        response = json.load(
            open(response_path(spool, request.request_id)))
        assert response["status"] == "ok"

    def test_partial_status_on_failed_point(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FARM_RAISE", "mcf:RAR")
        spool = os.path.join(str(tmp_path), "spool")
        request = self._submit(spool, workloads=["mcf"])
        server = FarmServer(spool, {"baseline": BASELINE}, jobs=2)
        server.serve_forever(max_requests=1)
        response = json.load(
            open(response_path(spool, request.request_id)))
        assert response["status"] == "partial"
        assert len(response["results"]) == 1
        assert len(response["failures"]) == 1
        assert response["failures"][0]["policy"] == "RAR"

    def test_cross_request_checkpoint_sharing(self, tmp_path):
        """Two share-warmup requests for the same workload: the second
        reuses the worker's cached warm checkpoint (one ``warmup_shared``
        event total), and its approximation is bit-identical to a fresh
        serial shared-warmup run."""
        # farm workers fork from this process and would inherit any
        # checkpoint this test session already warmed — start clean so
        # the event count below measures the cross-request sharing
        import repro.checkpoint as checkpoint_mod
        checkpoint_mod._PROCESS_CACHE = None
        spool = os.path.join(str(tmp_path), "spool")
        ledger = os.path.join(str(tmp_path), "led.jsonl")
        a = self._submit(spool, workloads=["mcf"], policies=["FLUSH"],
                         share_warmup=True)
        import time
        time.sleep(0.02)
        b = self._submit(spool, workloads=["mcf"], policies=["RAR"],
                         share_warmup=True)
        server = FarmServer(spool, {"baseline": BASELINE}, jobs=1,
                            ledger=ledger)
        assert server.serve_forever(max_requests=2) == 2
        events = read_ledger(ledger)
        warmups = [e for e in events if e["ev"] == "warmup_shared"]
        assert len(warmups) == 1  # second request hit the worker's cache
        resp_b = json.load(open(response_path(spool, b.request_id)))
        assert resp_b["status"] == "ok"
        serial = ExperimentRunner(instructions=N, warmup=W)
        want = serial.run_matrix(["mcf"], BASELINE, ["RAR"],
                                 share_warmup=True)
        assert resp_b["results"][0] == want["RAR"]["mcf"].to_dict()
        resp_a = json.load(open(response_path(spool, a.request_id)))
        assert resp_a["status"] == "ok"


class TestSweepRequest:
    def test_round_trips_through_dict(self):
        request = SweepRequest(request_id="abc", workloads=["mcf"],
                               policies=["OOO", "RAR"], machine="core-2",
                               instructions=1234, warmup=55,
                               share_warmup=True, warmup_policy="FLUSH",
                               warmup_mode="fast")
        assert SweepRequest.from_dict(request.to_dict()) == request

    def test_warmup_mode_defaults_to_detailed(self):
        payload = SweepRequest(request_id="abc", workloads=["mcf"],
                               policies=["OOO"]).to_dict()
        del payload["warmup_mode"]  # pre-fast-warmup client
        assert SweepRequest.from_dict(payload).warmup_mode == "detailed"

    def test_rejects_wrong_schema_and_empty_axes(self):
        good = SweepRequest(request_id="abc", workloads=["mcf"],
                            policies=["OOO"]).to_dict()
        with pytest.raises(ValueError, match="schema"):
            SweepRequest.from_dict({**good, "schema": 99})
        with pytest.raises(ValueError, match="non-empty"):
            SweepRequest.from_dict({**good, "workloads": []})
        with pytest.raises(ValueError, match="non-empty"):
            SweepRequest.from_dict({**good, "policies": []})
