"""Multi-seed statistics: realisation noise vs. mechanism effect."""

import pytest

from repro.analysis.experiments import (
    ExperimentRunner,
    MultiSeedResult,
    summarize_seeds,
)
from repro.common.params import BASELINE


class TestSummary:
    def test_mean_and_stddev(self):
        s = summarize_seeds("ipc", [1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.stddev == pytest.approx(1.0)
        assert s.rel_stddev == pytest.approx(0.5)

    def test_single_value(self):
        s = summarize_seeds("ipc", [5.0])
        assert s.mean == 5.0 and s.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_seeds("ipc", [])

    def test_frozen(self):
        s = summarize_seeds("ipc", [1.0])
        with pytest.raises(AttributeError):
            s.mean = 2.0
        assert isinstance(s, MultiSeedResult)


class TestRunSeeds:
    def test_seeds_yield_distinct_but_similar_runs(self):
        runner = ExperimentRunner(instructions=1200, warmup=1500)
        results = runner.run_seeds("libquantum", BASELINE, "OOO",
                                   seeds=[1, 2, 3])
        assert len(results) == 3
        ipcs = [r.ipc for r in results]
        # Different realisations -> not bit-identical...
        assert len(set(ipcs)) > 1
        # ...but statistically the same workload: spread is bounded.
        summary = summarize_seeds("ipc", ipcs)
        assert summary.rel_stddev < 0.35

    def test_mechanism_effect_exceeds_seed_noise(self):
        """RAR's ABC reduction must dwarf realisation noise — the core
        scientific-validity check for a synthetic-workload study."""
        runner = ExperimentRunner(instructions=1500, warmup=2500)
        seeds = [11, 22, 33]
        base = runner.run_seeds("libquantum", BASELINE, "OOO", seeds)
        rar = runner.run_seeds("libquantum", BASELINE, "RAR", seeds)
        base_abc = summarize_seeds(
            "abc", [r.abc_total / r.instructions for r in base])
        rar_abc = summarize_seeds(
            "abc", [r.abc_total / r.instructions for r in rar])
        gap = base_abc.mean - rar_abc.mean
        noise = base_abc.stddev + rar_abc.stddev
        assert gap > 3 * noise
