"""First-order energy accounting."""

import pytest

from repro.analysis.energy import (
    DEFAULT_MODEL,
    EnergyModel,
    energy_delay_product,
    energy_per_instruction,
)
from repro.sim import SimResult


def result(**kw):
    base = dict(workload="w", machine="m", policy="p", instructions=1000,
                cycles=2000, ipc=0.5, mlp=1.0, mpki=10.0, abc={},
                abc_total=0, total_bits=1, demand_llc_misses=10)
    base.update(kw)
    return SimResult(**base)


class TestEnergyModel:
    def test_components_sum_to_total(self):
        e = DEFAULT_MODEL.energy(result())
        assert e["total"] == pytest.approx(
            sum(v for k, v in e.items() if k != "total"))

    def test_commit_component(self):
        m = EnergyModel(commit=2.0, speculative=0, fetch_only=0,
                        llc_miss=0, static_per_cycle=0)
        assert m.energy(result())["total"] == 2000.0

    def test_speculative_work_costs(self):
        lean = result(runahead_uops_examined=1000, runahead_uops_executed=200)
        fat = result(runahead_uops_examined=1000, runahead_uops_executed=1000)
        assert DEFAULT_MODEL.energy(fat)["total"] > \
            DEFAULT_MODEL.energy(lean)["total"]

    def test_squashed_work_costs(self):
        clean = result()
        squashy = result(squashed_uops=5000)
        assert DEFAULT_MODEL.energy(squashy)["total"] > \
            DEFAULT_MODEL.energy(clean)["total"]

    def test_epi_and_edp(self):
        r = result()
        epi = energy_per_instruction(r)
        assert epi > 0
        assert energy_delay_product(r) == pytest.approx(epi * 2.0)

    def test_no_instructions_rejected(self):
        with pytest.raises(ValueError):
            energy_per_instruction(result(instructions=0))


class TestPolicyEnergyOrdering:
    def test_lean_beats_traditional_runahead(self):
        """PRE's energy claim: lean runahead executes far fewer
        speculative uops than TR for similar prefetch benefit."""
        from repro import BASELINE, simulate
        tr = simulate("libquantum", BASELINE, "TR",
                      instructions=2000, warmup=3000)
        pre = simulate("libquantum", BASELINE, "PRE",
                       instructions=2000, warmup=3000)
        if tr.runahead_uops_examined and pre.runahead_uops_examined:
            tr_frac = tr.runahead_uops_executed / tr.runahead_uops_examined
            pre_frac = pre.runahead_uops_executed / pre.runahead_uops_examined
            assert pre_frac < tr_frac
        assert energy_per_instruction(pre) < energy_per_instruction(tr)
