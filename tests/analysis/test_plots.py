"""ASCII plotting helpers."""

import pytest

from repro.analysis.plots import bar_chart, scatter, stacked_bars


class TestBarChart:
    def test_scaling(self):
        out = bar_chart({"a": 2.0, "b": 1.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_values_printed(self):
        out = bar_chart({"rar": 4.821}, width=5)
        assert "4.82" in out

    def test_title(self):
        out = bar_chart({"a": 1}, title="MTTF")
        assert out.startswith("MTTF")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})


class TestStackedBars:
    def test_segments_and_legend(self):
        out = stacked_bars(
            {"mcf": {"rob": 3.0, "iq": 1.0}},
            segments=("rob", "iq"), width=8)
        assert "█=rob" in out and "▓=iq" in out
        assert "█" * 6 in out  # rob = 3/4 of the bar

    def test_missing_segment_treated_as_zero(self):
        out = stacked_bars({"x": {"rob": 1.0}}, segments=("rob", "iq"))
        assert "x" in out


class TestScatter:
    def test_points_plotted(self):
        out = scatter({"rar": (1.2, 4.8), "pre": (1.38, 1.0)},
                      width=30, height=8)
        assert "R" in out and "P" in out
        assert "R=rar" in out

    def test_single_point(self):
        out = scatter({"solo": (1.0, 1.0)})
        assert "S" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter({})

    def test_doctests(self):
        import doctest
        import repro.analysis.plots as mod
        result = doctest.testmod(mod)
        assert result.failed == 0
