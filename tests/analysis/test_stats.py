"""Aggregation helpers (John's methodology)."""

import pytest

from repro.analysis.stats import amean, gmean, hmean


class TestMeans:
    def test_amean(self):
        assert amean([1, 2, 3]) == 2.0

    def test_hmean(self):
        assert hmean([1, 1, 1]) == 1.0
        assert hmean([2, 2]) == 2.0
        assert hmean([1, 3]) == pytest.approx(1.5)

    def test_gmean(self):
        assert gmean([4, 1]) == pytest.approx(2.0)
        assert gmean([8]) == pytest.approx(8.0)

    def test_mean_inequality(self):
        """hmean <= gmean <= amean for positive inputs."""
        vals = [0.5, 1.3, 2.2, 9.4]
        assert hmean(vals) <= gmean(vals) <= amean(vals)

    def test_empty_rejected(self):
        for fn in (amean, hmean, gmean):
            with pytest.raises(ValueError):
                fn([])

    def test_nonpositive_rejected_for_ratio_means(self):
        with pytest.raises(ValueError):
            hmean([1, 0])
        with pytest.raises(ValueError):
            gmean([1, -2])

    def test_amean_accepts_zero(self):
        assert amean([0, 2]) == 1.0
