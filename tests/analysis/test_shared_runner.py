"""Module-level shared runner semantics."""

import pytest

import repro.analysis.experiments as exp


class TestSharedRunner:
    def setup_method(self):
        exp._SHARED = None

    def teardown_method(self):
        exp._SHARED = None

    def test_first_caller_fixes_sizes(self):
        a = exp.shared_runner(instructions=500, warmup=100)
        b = exp.shared_runner(instructions=500, warmup=100)
        assert a is b
        assert b.instructions == 500
        assert b.warmup == 100

    def test_matching_and_omitted_sizes_share(self):
        a = exp.shared_runner(instructions=500, warmup=100)
        # omitted sizes adopt the shared runner's, they don't conflict
        assert exp.shared_runner() is a
        assert exp.shared_runner(warmup=100) is a

    def test_mismatched_sizes_raise(self):
        exp.shared_runner(instructions=500, warmup=100)
        # historically the second caller's sizes were *silently ignored*
        # and it measured 500-instruction points believing it asked for
        # 9999 — now the mismatch is loud
        with pytest.raises(ValueError, match="fixed by the first caller"):
            exp.shared_runner(instructions=9999)
        with pytest.raises(ValueError, match="warmup=9999"):
            exp.shared_runner(instructions=500, warmup=9999)

    def test_default_sizes(self):
        from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
        r = exp.shared_runner()
        # one documented default shared with simulate() (historically the
        # runner warmed only 5,000 instructions, diverging from simulate)
        assert r.instructions == DEFAULT_INSTRUCTIONS == 30_000
        assert r.warmup == DEFAULT_WARMUP == 20_000
