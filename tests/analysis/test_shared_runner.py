"""Module-level shared runner semantics."""

import repro.analysis.experiments as exp


class TestSharedRunner:
    def setup_method(self):
        exp._SHARED = None

    def teardown_method(self):
        exp._SHARED = None

    def test_first_caller_fixes_sizes(self):
        a = exp.shared_runner(instructions=500, warmup=100)
        b = exp.shared_runner(instructions=9999, warmup=9999)
        assert a is b
        assert b.instructions == 500
        assert b.warmup == 100

    def test_default_sizes(self):
        from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
        r = exp.shared_runner()
        # one documented default shared with simulate() (historically the
        # runner warmed only 5,000 instructions, diverging from simulate)
        assert r.instructions == DEFAULT_INSTRUCTIONS == 30_000
        assert r.warmup == DEFAULT_WARMUP == 20_000
