"""Bootstrap confidence intervals."""

import pytest

from repro.analysis.bootstrap import BootstrapCI, bootstrap_ci, paired_difference_ci
from repro.analysis.stats import amean, gmean


class TestBootstrapCI:
    def test_constant_sample_zero_width(self):
        ci = bootstrap_ci([2.0] * 10, amean)
        assert ci.estimate == 2.0
        assert ci.lo == ci.hi == 2.0
        assert ci.width == 0.0

    def test_contains_estimate(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0], amean)
        assert ci.estimate in ci
        assert ci.lo <= ci.estimate <= ci.hi

    def test_spread_widens_interval(self):
        tight = bootstrap_ci([1.0, 1.1, 0.9, 1.05, 0.95], amean, seed=1)
        wide = bootstrap_ci([0.1, 2.0, 0.5, 3.0, 1.0], amean, seed=1)
        assert wide.width > tight.width

    def test_deterministic(self):
        a = bootstrap_ci([1, 2, 3, 4], amean, seed=9)
        b = bootstrap_ci([1, 2, 3, 4], amean, seed=9)
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_works_with_gmean(self):
        ci = bootstrap_ci([1.0, 2.0, 4.0, 8.0], gmean)
        assert 1.0 < ci.lo <= ci.estimate <= ci.hi < 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], amean)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], amean, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], amean, resamples=3)

    def test_str_format(self):
        s = str(BootstrapCI(1.5, 1.2, 1.8, 0.95, 1000))
        assert "1.500" in s and "95% CI" in s


class TestPairedDifference:
    def test_clear_effect_is_significant(self):
        a = [5.0, 5.2, 4.9, 5.1, 5.3, 4.8]
        b = [1.0, 1.1, 0.9, 1.0, 1.2, 0.8]
        ci, significant = paired_difference_ci(a, b, amean)
        assert significant
        assert ci.lo > 0

    def test_no_effect_not_significant(self):
        a = [1.0, 2.0, 3.0, 4.0, 2.5, 1.5]
        b = [1.1, 1.9, 3.1, 3.9, 2.4, 1.6]
        ci, significant = paired_difference_ci(a, b, amean, seed=4)
        assert not significant
        assert 0.0 in ci

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_difference_ci([1], [1, 2], amean)
