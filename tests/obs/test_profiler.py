"""HostProfiler heartbeat: throttle gate, stream pinning, log routing."""

import io
import types

import pytest

from repro.obs import log as obs_log
from repro.obs.profiler import HostProfiler


@pytest.fixture(autouse=True)
def _clean_logging():
    obs_log.reset()
    yield
    obs_log.reset()


def _core(cycle=1000, committed=500):
    return types.SimpleNamespace(
        cycle=cycle, stats=types.SimpleNamespace(committed=committed))


def _started(heartbeat_s=1e-9, stream=None):
    """A profiler mid-region whose heartbeat period has already passed."""
    prof = HostProfiler(heartbeat_s=heartbeat_s, stream=stream)
    prof._t0 = 0.0
    prof._start_committed = 0
    prof._hb_next = 0.0
    return prof


class TestHeartbeatGate:
    def test_disabled_without_period(self):
        prof = HostProfiler(stream=io.StringIO())
        for _ in range(1024):
            prof.maybe_heartbeat(_core())
        assert prof.heartbeats == 0
        assert prof.stream.getvalue() == ""

    def test_256_call_gate(self):
        """perf_counter is consulted only every 256th call, so the first
        255 calls never heartbeat even with the period long expired."""
        prof = _started(stream=io.StringIO())
        for _ in range(255):
            prof.maybe_heartbeat(_core())
        assert prof.heartbeats == 0
        prof.maybe_heartbeat(_core())  # call 256 passes the gate
        assert prof.heartbeats == 1

    def test_period_throttles(self):
        prof = _started(heartbeat_s=3600.0, stream=io.StringIO())
        for _ in range(1024):
            prof.maybe_heartbeat(_core())
        assert prof.heartbeats == 1  # first fires, then next-period gate

    def test_not_started_never_fires(self):
        prof = HostProfiler(heartbeat_s=1e-9, stream=io.StringIO())
        for _ in range(512):
            prof.maybe_heartbeat(_core())
        assert prof.heartbeats == 0


class TestHeartbeatRouting:
    def _fire(self, prof):
        for _ in range(256):
            prof.maybe_heartbeat(_core(cycle=4242, committed=1234))

    def test_explicit_stream_always_wins(self):
        buf = io.StringIO()
        obs_log.configure(stream=io.StringIO())  # configured, but...
        prof = _started(stream=buf)
        self._fire(prof)
        line = buf.getvalue()
        assert line.startswith("[repro] cycle 4242 committed 1234")
        assert "KIPS" in line

    def test_routes_through_logging_when_configured(self):
        buf = io.StringIO()
        obs_log.configure(stream=buf)
        prof = _started()
        self._fire(prof)
        assert "heartbeat" in buf.getvalue()
        assert "cycle=4242" in buf.getvalue()
        assert "committed=1234" in buf.getvalue()

    def test_json_logging_structures_heartbeat(self):
        import json
        buf = io.StringIO()
        obs_log.configure(json_lines=True, stream=buf)
        prof = _started()
        self._fire(prof)
        rec = json.loads(buf.getvalue())
        assert rec["msg"] == "heartbeat"
        assert rec["data"]["cycle"] == 4242
        assert rec["data"]["committed"] == 1234
        assert "kips" in rec["data"]

    def test_quiet_silences_heartbeat(self):
        buf = io.StringIO()
        obs_log.configure(quiet=True, stream=buf)
        prof = _started()
        self._fire(prof)
        assert prof.heartbeats == 1  # fired, but filtered by level
        assert buf.getvalue() == ""

    def test_unconfigured_falls_back_to_stderr(self, capsys):
        prof = _started()
        self._fire(prof)
        err = capsys.readouterr().err
        assert "[repro] cycle 4242" in err
