"""Central logging layer: formatters, configure, worker queue path."""

import io
import json
import logging

import pytest

from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _clean_logging():
    """Every test starts and ends unconfigured (no handler leakage)."""
    obs_log.reset()
    yield
    obs_log.reset()


class TestGetLogger:
    def test_namespaced_child(self):
        assert obs_log.get_logger("sweep").name == "repro.sweep"
        assert obs_log.get_logger().name == "repro"

    def test_unconfigured_has_null_handler(self, capsys):
        obs_log.get_logger("x").warning("dropped")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
        assert not obs_log.is_configured()


class TestConfigure:
    def test_human_format_with_data(self):
        buf = io.StringIO()
        obs_log.configure(stream=buf)
        assert obs_log.is_configured()
        obs_log.get_logger("sweep").info(
            "point done", extra={"data": {"kips": 12.345, "n": 4}})
        assert buf.getvalue() == "[repro] point done kips=12.3 n=4\n"

    def test_warning_level_tagged(self):
        buf = io.StringIO()
        obs_log.configure(stream=buf)
        obs_log.get_logger().warning("uh oh")
        assert buf.getvalue().startswith("[repro:warning] uh oh")

    def test_json_lines(self):
        buf = io.StringIO()
        obs_log.configure(json_lines=True, stream=buf)
        obs_log.get_logger("sweep").info(
            "sweep start", extra={"data": {"jobs": 2}})
        rec = json.loads(buf.getvalue())
        assert rec["level"] == "info"
        assert rec["logger"] == "repro.sweep"
        assert rec["msg"] == "sweep start"
        assert rec["data"] == {"jobs": 2}
        assert rec["ts"] > 0

    def test_json_exception_field(self):
        buf = io.StringIO()
        obs_log.configure(json_lines=True, stream=buf)
        try:
            raise ValueError("boom")
        except ValueError:
            obs_log.get_logger().error("point failed", exc_info=True)
        rec = json.loads(buf.getvalue())
        assert "ValueError: boom" in rec["exc"]

    def test_quiet_suppresses_info(self):
        buf = io.StringIO()
        obs_log.configure(quiet=True, stream=buf)
        log = obs_log.get_logger()
        log.info("hidden")
        log.warning("shown")
        assert "hidden" not in buf.getvalue()
        assert "shown" in buf.getvalue()

    def test_verbose_enables_debug(self):
        buf = io.StringIO()
        obs_log.configure(verbose=True, stream=buf)
        obs_log.get_logger().debug("detail")
        assert "detail" in buf.getvalue()
        obs_log.configure(stream=buf)  # default level hides debug again
        obs_log.get_logger().debug("gone")
        assert "gone" not in buf.getvalue()

    def test_reconfigure_does_not_stack_handlers(self):
        for _ in range(3):
            obs_log.configure(stream=io.StringIO())
        root = logging.getLogger(obs_log.ROOT_NAME)
        assert len(root.handlers) == 1
        buf = io.StringIO()
        obs_log.configure(stream=buf)
        obs_log.get_logger().info("once")
        assert buf.getvalue().count("once") == 1

    def test_reset_restores_unconfigured(self):
        obs_log.configure(stream=io.StringIO())
        obs_log.reset()
        assert not obs_log.is_configured()
        root = logging.getLogger(obs_log.ROOT_NAME)
        assert all(isinstance(h, logging.NullHandler)
                   for h in root.handlers)


class TestWorkerQueuePath:
    def test_records_cross_the_queue(self):
        """install_worker_handler + start_listener round-trip a record
        through a real multiprocessing queue into the parent handler."""
        buf = io.StringIO()
        obs_log.configure(stream=buf)
        queue = obs_log.worker_log_queue()
        with obs_log.start_listener(queue):
            # Simulate the worker side in-process: swap in the queue
            # handler, log, then restore the parent configuration.
            obs_log.install_worker_handler(queue)
            obs_log.get_logger("worker").info(
                "from worker", extra={"data": {"pid": 1}})
            obs_log.configure(stream=buf)
        assert "[repro] from worker pid=1" in buf.getvalue()

    def test_listener_stop_is_idempotent(self):
        obs_log.configure(stream=io.StringIO())
        queue = obs_log.worker_log_queue()
        handle = obs_log.start_listener(queue)
        handle.stop()
        handle.stop()  # second stop must not raise
