"""Bench history: append/stamp, ledger aggregation, regression gate."""

import json

from repro.obs import bench


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        assert bench.load_history(path) == []
        assert bench.append_entry(path, {"kips": 10.0}, stamp=False) == 1
        assert bench.append_entry(path, {"kips": 11.0}, stamp=False) == 2
        history = bench.load_history(path)
        assert [r["kips"] for r in history] == [10.0, 11.0]

    def test_stamp_adds_header_fields(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        bench.append_entry(path, {"kips": 10.0})
        (rec,) = bench.load_history(path)
        assert rec["kips"] == 10.0
        assert "timestamp" in rec and "python" in rec and "host" in rec
        assert "git_sha" in rec

    def test_caller_wins_on_stamp_conflict(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        bench.append_entry(path, {"python": "override"})
        assert bench.load_history(path)[0]["python"] == "override"

    def test_unreadable_history_is_empty(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        with open(path, "w") as f:
            f.write("{ torn")
        assert bench.load_history(path) == []
        with open(path, "w") as f:
            json.dump({"not": "a list"}, f)
        assert bench.load_history(path) == []


class TestLedgerKips:
    def _events(self):
        return [
            {"ev": "sweep_start", "ts": 100.0, "pid": 1, "total_points": 2,
             "manifest": {}},
            {"ev": "point_done", "ts": 102.0, "pid": 2, "workload": "mcf",
             "machine": "baseline", "policy": "OOO", "wall_s": 2.0,
             "kips": 8.0},
            {"ev": "point_cached", "ts": 102.5, "pid": 1, "workload": "lbm",
             "machine": "baseline", "policy": "OOO", "manifest": {}},
            {"ev": "point_done", "ts": 104.0, "pid": 3, "workload": "mcf",
             "machine": "baseline", "policy": "RAR", "wall_s": 2.0,
             "kips": 12.0},
            {"ev": "sweep_done", "ts": 104.0, "pid": 1, "elapsed_s": 4.0},
        ]

    def test_aggregates(self):
        agg = bench.ledger_kips(self._events())
        assert agg["points"] == {"mcf/baseline/OOO": 8.0,
                                 "mcf/baseline/RAR": 12.0}
        assert agg["mean_kips"] == 10.0
        assert agg["points_done"] == 2
        assert agg["points_cached"] == 1
        assert agg["point_wall_s"] == 4.0
        assert agg["elapsed_s"] == 4.0
        # serial cost 4.0s over 4.0s sweep wall: no overlap in this toy
        assert agg["speedup"] == 1.0

    def test_empty_ledger(self):
        agg = bench.ledger_kips([])
        assert agg["points"] == {} and agg["mean_kips"] == 0.0
        assert "speedup" not in agg


class TestRegressionGate:
    def test_short_history_is_clean(self):
        assert bench.check_regression([]) == []
        assert bench.check_regression([{"kips": 1.0}]) == []

    def test_regression_detected(self):
        history = [{"kips": 10.0}, {"kips": 7.9}]  # -21% < the 20% floor
        (problem,) = bench.check_regression(history)
        assert "kips" in problem and "80%" in problem

    def test_within_floor_passes(self):
        assert bench.check_regression([{"kips": 10.0}, {"kips": 8.1}]) == []

    def test_improvement_passes(self):
        assert bench.check_regression([{"kips": 10.0}, {"kips": 20.0}]) == []

    def test_nested_points_flattened(self):
        history = [{"points": {"mcf/OOO": 10.0, "mcf/RAR": 10.0}},
                   {"points": {"mcf/OOO": 5.0, "mcf/RAR": 9.9}}]
        problems = bench.check_regression(history)
        assert len(problems) == 1
        assert "points.mcf/OOO" in problems[0]

    def test_fields_limits_the_gate(self):
        history = [{"kips": 10.0, "ipc": 1.0}, {"kips": 1.0, "ipc": 1.0}]
        assert bench.check_regression(history, fields=["ipc"]) == []
        assert bench.check_regression(history, fields=["kips"])

    def test_header_and_wall_fields_ignored(self):
        history = [{"timestamp": "a", "elapsed_s": 1.0, "serial_s": 1.0,
                    "kips": 10.0},
                   {"timestamp": "b", "elapsed_s": 99.0, "serial_s": 99.0,
                    "kips": 10.0}]
        assert bench.check_regression(history) == []

    def test_custom_floor(self):
        history = [{"kips": 10.0}, {"kips": 9.0}]
        assert bench.check_regression(history, floor=0.95)
        assert bench.check_regression(history, floor=0.5) == []


class TestDiffEntries:
    def test_renders_table(self):
        history = [{"timestamp": "2026-08-07T00:00:00Z", "git_sha": "a" * 40,
                    "kips": 10.0},
                   {"timestamp": "2026-08-08T00:00:00Z", "git_sha": "b" * 40,
                    "kips": 11.0}]
        out = bench.diff_entries(history)
        assert "kips" in out
        assert "@aaaaaaaa" in out and "@bbbbbbbb" in out

    def test_empty_history(self):
        assert bench.diff_entries([]) == "no bench entries"
