"""Event tracer and Chrome trace-event export."""

import json

from repro.obs.tracer import EventTracer, validate_chrome_trace


class TestRingBuffer:
    def test_bounded_drops_oldest(self):
        t = EventTracer(capacity=4)
        for i in range(10):
            t.emit("mispredict", i)
        assert len(t) == 4
        assert t.emitted == 10
        assert t.dropped == 6
        assert [e.cycle for e in t.events] == [6, 7, 8, 9]

    def test_counts_by_kind(self):
        t = EventTracer()
        t.emit("squash", 1, count=3)
        t.emit("squash", 2, count=1)
        t.emit("mispredict", 2)
        assert t.summary() == {"squash": 2, "mispredict": 1}


class TestSpans:
    def test_begin_end_span(self):
        t = EventTracer()
        t.begin_span("runahead", 100, pc=0x40)
        t.end_span("runahead", 250)
        (ev,) = t.events
        assert ev.kind == "runahead"
        assert ev.cycle == 100 and ev.dur == 150
        assert ev.args["pc"] == 0x40

    def test_end_without_begin_is_noop(self):
        t = EventTracer()
        t.end_span("runahead", 50)
        assert len(t) == 0

    def test_close_open_spans_truncates(self):
        t = EventTracer()
        t.begin_span("flush_stall", 10)
        t.close_open_spans(30)
        (ev,) = t.events
        assert ev.dur == 20
        assert ev.args["truncated"] is True


class TestChromeExport:
    def _traced(self):
        t = EventTracer()
        t.begin_span("runahead", 100)
        t.end_span("runahead", 400)
        t.emit("llc_miss", 120, dur=300, addr=0x1000, pc=0x40)
        t.emit("mispredict", 170, pc=0x44)
        return t

    def test_schema_valid(self):
        obj = self._traced().to_chrome()
        assert validate_chrome_trace(obj) is None

    def test_span_and_instant_phases(self):
        obj = self._traced().to_chrome("label")
        evs = [e for e in obj["traceEvents"] if e["ph"] in ("X", "i")]
        phases = {e["name"]: e["ph"] for e in evs}
        assert phases == {"runahead": "X", "llc_miss": "X",
                          "mispredict": "i"}
        span = next(e for e in evs if e["name"] == "runahead")
        assert span["ts"] == 100 and span["dur"] == 300

    def test_write_is_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        self._traced().write_chrome(path)
        with open(path) as f:
            obj = json.load(f)
        assert validate_chrome_trace(obj) is None

    def test_validator_rejects_junk(self):
        assert validate_chrome_trace([]) is not None
        assert validate_chrome_trace({"traceEvents": [{}]}) is not None
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "pid": 0,
                              "tid": 0, "ts": 1}]}) is not None  # no dur
