"""`repro top` rendering and the ledger post-mortem report."""

import io

from repro.obs.ledger import RunLedger, SweepStatus, load_status, \
    read_ledger, summarize
from repro.obs.top import render_ledger_report, render_status, run_top


def _events(errors=False, finished=True):
    events = [
        {"ev": "sweep_start", "ts": 100.0, "pid": 1, "total_points": 4,
         "jobs": 2, "machine": "baseline", "workloads": ["mcf"],
         "manifest": {"git_sha": "abcdef0123456789", "git_dirty": True,
                      "python": "3.11.7", "hostname": "ci"}},
        {"ev": "worker_heartbeat", "ts": 101.0, "pid": 11, "done": 0},
        {"ev": "point_cached", "ts": 101.5, "pid": 1, "workload": "mcf",
         "machine": "baseline", "policy": "OOO", "manifest": {}},
        {"ev": "point_start", "ts": 102.0, "pid": 11, "workload": "mcf",
         "machine": "baseline", "policy": "RAR"},
        {"ev": "point_done", "ts": 104.0, "pid": 11, "workload": "mcf",
         "machine": "baseline", "policy": "RAR", "wall_s": 2.0,
         "kips": 9.0, "manifest": {}},
        {"ev": "point_start", "ts": 104.5, "pid": 12, "workload": "mcf",
         "machine": "baseline", "policy": "TR"},
    ]
    if errors:
        events.append({"ev": "point_error", "ts": 105.0, "pid": 12,
                       "workload": "mcf", "machine": "baseline",
                       "policy": "TR", "error": "ValueError('boom')",
                       "traceback": "Traceback (most recent call "
                                    "last):\n  boom"})
    else:
        events.append({"ev": "point_done", "ts": 106.0, "pid": 12,
                       "workload": "mcf", "machine": "baseline",
                       "policy": "TR", "wall_s": 1.5, "kips": 11.0,
                       "manifest": {}})
        events.append({"ev": "point_done", "ts": 107.0, "pid": 11,
                       "workload": "mcf", "machine": "baseline",
                       "policy": "PRE", "wall_s": 1.0, "kips": 10.0,
                       "manifest": {}})
    if finished:
        events.append({"ev": "sweep_done", "ts": 108.0, "pid": 1,
                       "elapsed_s": 8.0, "points_run": 3,
                       "points_cached": 1})
    return events


class TestRenderStatus:
    def test_complete_sweep_screen(self):
        out = render_status(summarize(_events(), path="l.jsonl"), now=108.0)
        assert "repro top — l.jsonl [done]" in out
        assert "sweep: jobs=2 machine=baseline" in out
        assert "provenance: git abcdef012345+dirty py3.11.7 host ci" in out
        assert "4/4  done=3 cached=1 errors=0" in out
        assert "[##############################]" in out
        assert "cache-hit 25%" in out
        assert "KIPS mean 10.0" in out
        assert "ETA" not in out  # complete sweeps have no ETA

    def test_running_sweep_has_eta_and_workers(self):
        # Truncate mid-sweep: 2 of 4 points terminal, TR in flight.
        st = summarize(_events(finished=False)[:6])
        out = render_status(st, now=105.0)
        assert "[running]" in out
        assert "ETA" in out
        assert "workers:" in out
        assert "idle after point_done" in out  # pid 11 between points

    def test_in_flight_point_shown_per_worker(self):
        events = _events(finished=False)[:6]  # TR still running on pid 12
        out = render_status(summarize(events), now=105.0)
        assert "mcf/baseline/TR" in out
        assert "2/4" in out

    def test_stale_worker_flagged(self):
        out = render_status(summarize(_events(finished=False)), now=300.0)
        assert "(stale?)" in out

    def test_error_lines(self):
        out = render_status(summarize(_events(errors=True)), now=108.0)
        assert "errors=1" in out
        assert "ERROR mcf/baseline/TR" in out

    def test_empty_status_waits(self):
        out = render_status(SweepStatus(path="missing.jsonl"), now=0.0)
        assert "[waiting]" in out
        assert "0/0" in out


class TestLedgerReport:
    def test_clean_report_passes_audit(self):
        out = render_ledger_report(_events(), path="l.jsonl")
        assert "ledger audit: every point has exactly one terminal " \
               "event" in out
        assert "traceback for" not in out

    def test_error_report_includes_traceback(self):
        out = render_ledger_report(_events(errors=True))
        assert "traceback for mcf/baseline/TR:" in out
        assert "boom" in out

    def test_unfinished_sweep_audit(self):
        out = render_ledger_report(_events(finished=False))
        assert "no sweep_done event" in out


class TestRunTop:
    def test_once_snapshot(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        led = RunLedger(path)
        for e in _events():
            led.emit(e.pop("ev"), **{k: v for k, v in e.items()
                                     if k not in ("ts", "pid")})
        buf = io.StringIO()
        assert run_top(path, once=True, stream=buf) == 0
        out = buf.getvalue()
        assert "[done]" in out and "done=3 cached=1" in out
        assert "\x1b[" not in out  # no ANSI control codes in --once mode

    def test_once_exit_code_on_errors(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        led = RunLedger(path)
        for e in _events(errors=True):
            led.emit(e.pop("ev"), **{k: v for k, v in e.items()
                                     if k not in ("ts", "pid")})
        assert run_top(path, once=True, stream=io.StringIO()) == 1

    def test_once_missing_file(self, tmp_path):
        buf = io.StringIO()
        assert run_top(str(tmp_path / "nope.jsonl"), once=True,
                       stream=buf) == 0
        assert "[waiting]" in buf.getvalue()

    def test_live_loop_exits_on_complete(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        led = RunLedger(path)
        for e in _events():
            led.emit(e.pop("ev"), **{k: v for k, v in e.items()
                                     if k not in ("ts", "pid")})
        buf = io.StringIO()
        assert run_top(path, refresh_s=0.0, stream=buf) == 0
        assert "\x1b[H\x1b[J" in buf.getvalue()  # redraw control code

    def test_live_loop_times_out(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        RunLedger(path).point_start(workload="w", machine="m", policy="p")
        assert run_top(path, refresh_s=0.01, stream=io.StringIO(),
                       max_wait_s=0.02) == 1

    def test_round_trip_via_ledger_file(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        led = RunLedger(path)
        led.sweep_start(total_points=1, manifest={})
        led.point_done(workload="w", machine="m", policy="p", wall_s=1.0,
                       kips=5.0, manifest={})
        led.sweep_done(elapsed_s=1.0)
        st = load_status(path)
        assert st.complete and st.done == 1
        assert render_ledger_report(read_ledger(path), path=path)


class TestCrashToleranceRendering:
    def _crash_events(self):
        events = _events(finished=False)
        events.append({"ev": "worker_dead", "ts": 106.5, "pid": 1,
                       "dead_pid": 12})
        events.append({"ev": "point_requeued", "ts": 106.6, "pid": 1,
                       "workload": "mcf", "machine": "baseline",
                       "policy": "TR", "attempt": 1})
        return events

    def test_dead_worker_and_requeue_rendered(self):
        out = render_status(summarize(self._crash_events()), now=107.0)
        assert "crash tolerance: 1 worker death(s), 1 point(s) requeued" \
            in out
        assert "DEAD (work requeued)" in out
        # the dead worker's stale in-flight point is not shown as current
        assert "idle after" not in out.split("DEAD")[0].split("12")[-1]

    def test_quarantined_counts_and_error_line(self):
        events = self._crash_events()
        events.append({"ev": "point_quarantined", "ts": 107.0, "pid": 1,
                       "workload": "mcf", "machine": "baseline",
                       "policy": "TR", "error": "killed 3 workers",
                       "attempts": 3})
        out = render_status(summarize(events), now=108.0)
        assert "quarantined=1" in out
        assert "ERROR mcf/baseline/TR (quarantined)" in out

    def test_healthy_sweep_hides_crash_line(self):
        out = render_status(summarize(_events()), now=108.0)
        assert "crash tolerance" not in out
        assert "DEAD" not in out
