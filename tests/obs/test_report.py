"""Stats-report rendering: counters, timelines, manifests, edges."""

from repro.obs.report import _render_timeline, load_stats, render_report


def _timeline(n, interval=100):
    return {"interval": interval,
            "samples": [{"cycle": i * interval, "ipc": 0.5} for i in
                        range(n)]}


class TestTimelineRendering:
    def test_short_timeline_shows_every_sample(self):
        out = _render_timeline(_timeline(5))
        assert "5 samples every 100 cycles" in out
        assert "elided" not in out
        assert out.count("\n") >= 6  # header + table header + 5 rows

    def test_stride_always_includes_last_sample(self):
        # 47 samples, max_rows 20 -> step 2 -> 0,2,...,46: the final
        # sample (cycle 4600) is on-stride here, so use 48: 0,2,...,46
        # misses cycle 4700 unless the tail fix appends it.
        out = _render_timeline(_timeline(48))
        assert "4700" in out  # the last sample's cycle
        assert "showing every 2th + last" in out

    def test_elided_count_is_reported(self):
        # 48 samples, step 2 -> 24 strided + 1 appended tail = 25 shown
        out = _render_timeline(_timeline(48))
        assert "23 rows elided" in out

    def test_on_stride_tail_not_duplicated(self):
        # 41 samples, step 2 -> 0,2,...,40: last sample already shown
        out = _render_timeline(_timeline(41))
        assert out.count("4000") == 1

    def test_empty_timeline(self):
        assert _render_timeline({"samples": []}) == "timeline: no samples"
        assert _render_timeline({}) == "timeline: no samples"


class TestRenderReport:
    def _stats(self):
        return {
            "result": {"workload": "mcf", "machine": "baseline",
                       "policy": "RAR", "instructions": 1000,
                       "cycles": 2000, "ipc": 0.5, "abc_total": 42,
                       "avf": 0.1},
            "stats": {"core": {"commit": {"committed": 1000},
                               "lat": {"kind": "distribution", "count": 3,
                                       "mean": 2.5, "min": 1, "max": 5}}},
            "timeline": _timeline(3),
            "host_profile": {"kips": 8.5, "cycles_per_second": 17000.0,
                             "wall_seconds": 0.118,
                             "stage_shares": {"commit": 0.6,
                                              "fetch": 0.4}},
            "trace_summary": {"emitted": 10, "dropped": 0,
                              "counts": {"runahead_enter": 2}},
            "manifest": {"git_sha": "abcdef0123456789", "git_dirty": True,
                         "repro_version": "1.0.0", "python": "3.11.7",
                         "hostname": "ci", "timestamp": "2026-08-08",
                         "point": {"workload": "mcf", "machine": "baseline",
                                   "policy": "RAR", "instructions": 1000,
                                   "warmup": 500, "params_digest": "d1g3st",
                                   "variant": "sw:OOO"}},
        }

    def test_all_sections_render(self):
        out = render_report(self._stats())
        assert "mcf on baseline under RAR" in out
        assert "core.commit.committed" in out
        assert "distribution" in out and "core.lat" in out
        assert "timeline: 3 samples" in out
        assert "8.5 KIPS" in out and "commit=60.0%" in out
        assert "runahead_enter=2" in out

    def test_manifest_section(self):
        out = render_report(self._stats())
        assert "provenance: git abcdef012345+dirty" in out
        assert "py3.11.7 on ci" in out
        assert "point: mcf/baseline/RAR n=1000 w=500" in out
        assert "params=d1g3st" in out and "variant=sw:OOO" in out

    def test_partial_file_degrades(self):
        out = render_report({"stats": {"core": {"c": 1}}})
        assert "core.c" in out and "timeline" not in out

    def test_empty_file(self):
        assert render_report({}) == "empty stats file"

    def test_load_stats_rejects_non_object(self, tmp_path):
        import json

        import pytest
        path = str(tmp_path / "s.json")
        with open(path, "w") as f:
            json.dump([1, 2], f)
        with pytest.raises(ValueError, match="not a stats object"):
            load_stats(path)
