"""Run ledger: typed events, summaries, the terminal-event audit."""

import os

import pytest

from repro.obs.ledger import (
    EVENT_TYPES,
    TERMINAL_EVENTS,
    RunLedger,
    check_complete,
    load_status,
    point_label,
    read_ledger,
    summarize,
)


def _mani(**kw):
    base = {"workload": "mcf", "machine": "baseline", "policy": "RAR",
            "instructions": 500, "warmup": 200, "seed": None,
            "variant": "", "params_digest": "deadbeef00",
            "git_sha": "abc", "git_dirty": False}
    base.update(kw)
    return base


def _sample_events(path):
    """A complete 3-point sweep: 2 run, 1 cached, on one worker."""
    led = RunLedger(path)
    led.sweep_start(total_points=3, manifest={"git_sha": "abc",
                                              "git_dirty": False,
                                              "python": "3.11",
                                              "hostname": "h"},
                    machine="baseline", jobs=1)
    led.point_cached(workload="mcf", machine="baseline", policy="OOO",
                     manifest=_mani(policy="OOO"))
    led.worker_heartbeat(workload="mcf", done=0)
    led.warmup_shared(workload="mcf", machine="baseline", policy="OOO",
                      warmup=200, wall_s=0.5)
    for pol, kips in (("RAR", 10.0), ("TR", 20.0)):
        led.point_start(workload="mcf", machine="baseline", policy=pol)
        led.point_done(workload="mcf", machine="baseline", policy=pol,
                       wall_s=2.0, kips=kips, ipc=0.5,
                       manifest=_mani(policy=pol))
    led.sweep_done(elapsed_s=5.0, points_run=2, points_cached=1)
    return read_ledger(path)


class TestRunLedger:
    def test_round_trip_stamps_ts_and_pid(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        events = _sample_events(path)
        assert [e["ev"] for e in events] == [
            "sweep_start", "point_cached", "worker_heartbeat",
            "warmup_shared", "point_start", "point_done", "point_start",
            "point_done", "sweep_done"]
        for e in events:
            assert e["ev"] in EVENT_TYPES
            assert e["ts"] > 0 and e["pid"] == os.getpid()

    def test_unknown_event_rejected(self, tmp_path):
        led = RunLedger(str(tmp_path / "l.jsonl"))
        with pytest.raises(ValueError, match="unknown ledger event"):
            led.emit("point_exploded")

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nest" / "l.jsonl")
        RunLedger(path).sweep_done(elapsed_s=0.0)
        assert read_ledger(path)[0]["ev"] == "sweep_done"

    def test_point_error_carries_traceback(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        RunLedger(path).point_error(
            workload="mcf", machine="baseline", policy="RAR",
            error="ValueError('boom')", traceback_text="Traceback ...")
        (e,) = read_ledger(path)
        assert e["error"] == "ValueError('boom')"
        assert e["traceback"].startswith("Traceback")

    def test_point_label(self):
        assert point_label({"workload": "mcf", "machine": "core-1",
                            "policy": "RAR"}) == "mcf/core-1/RAR"
        assert point_label({}) == "?/?/?"


class TestSummarize:
    def test_counts_and_rates(self, tmp_path):
        st = summarize(_sample_events(str(tmp_path / "l.jsonl")))
        assert st.total_points == 3
        assert (st.done, st.cached, st.errors) == (2, 1, 0)
        assert st.terminal == 3 and st.remaining == 0
        assert st.complete
        assert st.cache_hit_rate == pytest.approx(1 / 3)
        assert st.mean_kips == pytest.approx(15.0)
        assert st.point_walls == [2.0, 2.0]
        assert st.warmups == 1

    def test_worker_state_tracks_current_point(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        led = RunLedger(path)
        led.sweep_start(total_points=2, manifest={})
        led.point_start(workload="mcf", machine="baseline", policy="RAR")
        st = load_status(path)
        (w,) = st.workers.values()
        assert w.current == "mcf/baseline/RAR"
        assert not st.complete and st.remaining == 2
        led.point_done(workload="mcf", machine="baseline", policy="RAR",
                       wall_s=1.0, kips=5.0, manifest={})
        (w,) = load_status(path).workers.values()
        assert w.current == "" and w.points_done == 1

    def test_eta_uses_recent_walls_and_workers(self):
        events = [{"ev": "sweep_start", "ts": 0.0, "pid": 1,
                   "total_points": 10, "manifest": {}}]
        for i in range(4):
            events.append({"ev": "point_done", "ts": float(i + 1),
                           "pid": 1 + i % 2, "workload": "mcf",
                           "machine": "baseline", "policy": "RAR",
                           "wall_s": 2.0, "kips": 8.0})
        st = summarize(events)
        # 6 points remain, mean wall 2.0s, 2 active workers -> 6s
        assert st.eta_s() == pytest.approx(6.0)
        events.append({"ev": "sweep_done", "ts": 9.0, "pid": 1,
                       "elapsed_s": 9.0})
        assert summarize(events).eta_s() is None  # complete: no ETA

    def test_errors_collected(self):
        events = [{"ev": "point_error", "ts": 1.0, "pid": 7,
                   "workload": "mcf", "machine": "core-2", "policy": "PRE",
                   "error": "boom", "traceback": "tb"}]
        st = summarize(events)
        assert st.errors == 1
        assert st.error_points == ["mcf/core-2/PRE"]

    def test_total_defaults_to_terminal_without_sweep_start(self):
        events = [{"ev": "point_done", "ts": 1.0, "pid": 1,
                   "workload": "w", "machine": "m", "policy": "p",
                   "wall_s": 1.0}]
        assert summarize(events).total_points == 1


class TestCheckComplete:
    def test_clean_ledger_passes(self, tmp_path):
        assert check_complete(_sample_events(str(tmp_path / "l.jsonl"))) == []

    def test_duplicate_terminal_event_flagged(self, tmp_path):
        events = _sample_events(str(tmp_path / "l.jsonl"))
        events.append(dict(events[5]))  # second point_done for mcf/RAR
        problems = check_complete(events)
        assert any("2 terminal events" in p for p in problems)

    def test_missing_point_flagged(self, tmp_path):
        events = [e for e in _sample_events(str(tmp_path / "l.jsonl"))
                  if not (e["ev"] == "point_done"
                          and e.get("policy") == "TR")]
        problems = check_complete(events)
        assert any("2 distinct points" in p for p in problems)

    def test_unfinished_sweep_flagged(self, tmp_path):
        events = [e for e in _sample_events(str(tmp_path / "l.jsonl"))
                  if e["ev"] != "sweep_done"]
        assert check_complete(events) == ["no sweep_done event (sweep "
                                          "crashed or still running)"]

    def test_terminal_event_names(self):
        assert set(TERMINAL_EVENTS) <= set(EVENT_TYPES)


class TestSchedulerEvents:
    """Farm scheduler events: worker_dead / requeue / quarantine /
    request envelopes (docs/farm.md)."""

    def _crash_events(self, path):
        """A 2-point sweep whose worker dies once mid-sweep."""
        led = RunLedger(path)
        led.sweep_start(total_points=2, manifest={})
        led.point_start(workload="mcf", machine="baseline", policy="OOO")
        led.point_done(workload="mcf", machine="baseline", policy="OOO",
                       wall_s=1.0, kips=5.0, manifest={})
        # the worker (pid stamped on the events above: this process) is
        # found dead; its undelivered point goes back on the queue
        led.worker_dead(dead_pid=os.getpid(), workload="mcf")
        led.point_requeued(workload="mcf", machine="baseline",
                           policy="RAR", attempt=1)
        led.point_start(workload="mcf", machine="baseline", policy="RAR")
        led.point_done(workload="mcf", machine="baseline", policy="RAR",
                       wall_s=1.0, kips=5.0, manifest={})
        led.sweep_done(elapsed_s=3.0, points_run=2)
        return read_ledger(path)

    def test_crash_tolerant_sweep_summary(self, tmp_path):
        st = summarize(self._crash_events(str(tmp_path / "l.jsonl")))
        assert st.worker_deaths == 1
        assert st.requeued == 1
        assert st.done == 2 and st.errors == 0 and st.quarantined == 0
        assert st.complete
        (w,) = st.workers.values()
        assert w.dead and w.current == ""

    def test_crash_tolerant_sweep_audits_clean(self, tmp_path):
        """Requeue leaves a dangling point_start behind; the retry's
        single terminal event still satisfies the audit."""
        events = self._crash_events(str(tmp_path / "l.jsonl"))
        # drop the retry's terminal event -> the dangling start shows up
        assert check_complete(events) == []
        broken = events[:-2] + events[-1:]
        assert any("distinct points" in p for p in check_complete(broken))

    def test_quarantine_is_terminal(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        led = RunLedger(path)
        led.sweep_start(total_points=1, manifest={})
        led.worker_dead(dead_pid=999)
        led.point_quarantined(workload="mcf", machine="baseline",
                              policy="RAR", error="killed 3 workers",
                              attempts=3)
        led.sweep_done(elapsed_s=1.0, points_run=0)
        events = read_ledger(path)
        st = summarize(events)
        assert st.quarantined == 1 and st.terminal == 1
        assert st.error_points == ["mcf/baseline/RAR (quarantined)"]
        assert check_complete(events) == []

    def test_scheduler_pid_never_registers_as_worker(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        led = RunLedger(path)
        led.sweep_start(total_points=0, manifest={})
        led.worker_dead(dead_pid=424242)
        led.point_requeued(workload="w", machine="m", policy="p", attempt=1)
        led.request_received(request_id="r1", points=4)
        led.request_done(request_id="r1", status="ok")
        st = summarize(read_ledger(path))
        assert st.workers == {}  # these events come from the orchestrator
        assert st.requests == 1

    def test_dead_worker_excluded_from_eta(self):
        events = [{"ev": "sweep_start", "ts": 0.0, "pid": 1,
                   "total_points": 10, "manifest": {}}]
        for i in range(4):
            events.append({"ev": "point_done", "ts": float(i + 1),
                           "pid": 1 + i % 2, "workload": "mcf",
                           "machine": "baseline", "policy": "RAR",
                           "wall_s": 2.0, "kips": 8.0})
        alive = summarize(events).eta_s()
        events.append({"ev": "worker_dead", "ts": 5.0, "pid": 99,
                       "dead_pid": 2})
        # one of the two workers died: the same backlog takes twice as long
        assert summarize(events).eta_s() == pytest.approx(alive * 2)
