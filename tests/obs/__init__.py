"""Telemetry subsystem tests."""
