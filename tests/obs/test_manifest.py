"""Provenance manifests: git probe, host and per-point records."""

from repro.common.params import BASELINE
from repro.obs import manifest
from repro.obs.manifest import MANIFEST_SCHEMA, git_state, host_manifest, \
    point_manifest


class TestGitState:
    def test_repo_probe(self):
        state = git_state()
        # This test runs from a git checkout; outside one both fields
        # degrade to None (covered below), never raise.
        if state["sha"] is not None:
            assert len(state["sha"]) == 40
            assert isinstance(state["dirty"], bool)

    def test_cached_after_first_probe(self):
        first = git_state()
        assert git_state() is first

    def test_non_repo_degrades_to_none(self, tmp_path):
        state = git_state(cwd=str(tmp_path))
        assert state == {"sha": None, "dirty": None}

    def test_explicit_cwd_not_cached(self, tmp_path):
        cached = git_state()
        assert git_state(cwd=str(tmp_path)) is not cached
        assert git_state() is cached


class TestHostManifest:
    def test_fields(self):
        mani = host_manifest()
        assert mani["schema"] == MANIFEST_SCHEMA
        from repro import __version__
        assert mani["repro_version"] == __version__
        for key in ("timestamp", "git_sha", "git_dirty", "python",
                    "platform", "hostname", "pid", "argv"):
            assert key in mani
        assert isinstance(mani["argv"], list)

    def test_extra_fields_merge(self):
        mani = host_manifest(extra={"point": {"workload": "mcf"}})
        assert mani["point"] == {"workload": "mcf"}

    def test_json_serialisable(self):
        import json
        json.dumps(host_manifest())


class TestPointManifest:
    def test_machine_params_digested(self):
        from repro.analysis.experiments import RunKey
        mani = point_manifest("mcf", BASELINE, "RAR", 1000, 500, seed=3,
                              variant="sw:OOO")
        assert mani["workload"] == "mcf"
        assert mani["machine"] == BASELINE.name
        assert mani["policy"] == "RAR"
        assert mani["instructions"] == 1000 and mani["warmup"] == 500
        assert mani["seed"] == 3 and mani["variant"] == "sw:OOO"
        assert mani["params_digest"] == RunKey.digest(BASELINE)
        assert "git_sha" in mani and "git_dirty" in mani

    def test_machine_name_string_accepted(self):
        mani = point_manifest("mcf", "baseline", "OOO", 100, 50)
        assert mani["machine"] == "baseline"
        assert mani["params_digest"] == ""

    def test_distinct_machines_distinct_digests(self):
        from repro.common.params import CORE4
        a = point_manifest("mcf", BASELINE, "OOO", 100, 50)
        b = point_manifest("mcf", CORE4, "OOO", 100, 50)
        assert a["params_digest"] != b["params_digest"]

    def test_phased_workload_provenance(self):
        mani = point_manifest("ph-burst-mpki", BASELINE, "OOO", 100, 50)
        assert mani["phase_count"] == 2
        assert mani["phase_schedule_iters"] > 0

    def test_trace_workload_provenance(self, tmp_path):
        from repro.isa.tracefile import save_trace
        from repro.workloads.catalog import get_workload
        path = str(tmp_path / "m.trace")
        save_trace(get_workload("x264").build_trace(), path, limit=50)
        mani = point_manifest(f"trace:{path}", BASELINE, "OOO", 100, 50)
        assert mani["trace_file"] == path
        assert len(mani["trace_sha256"]) == 64
        assert mani["trace_format_version"] == 2

    def test_stationary_workload_has_no_extra_provenance(self):
        mani = point_manifest("mcf", BASELINE, "OOO", 100, 50)
        assert "phase_count" not in mani
        assert "trace_file" not in mani


class TestCacheIsolation:
    def test_module_cache_is_resettable(self, monkeypatch):
        monkeypatch.setattr(manifest, "_git_state", None)
        state = git_state()
        assert state is manifest._git_state
