"""Hierarchical stats registry."""

import pytest

from repro.obs.registry import (
    Distribution, StatsRegistry, flatten_tree,
)


class TestScalar:
    def test_owned_counter(self):
        reg = StatsRegistry()
        s = reg.scalar("a.b.count")
        s.inc()
        s.inc(4)
        assert s.value == 5
        s.set(2)
        assert reg.flat() == {"a.b.count": 2}

    def test_bound_getter_is_read_only(self):
        box = {"v": 7}
        reg = StatsRegistry()
        s = reg.scalar("x", getter=lambda: box["v"])
        assert s.value == 7
        box["v"] = 9
        assert s.value == 9
        with pytest.raises(TypeError):
            s.inc()

    def test_duplicate_name_rejected(self):
        reg = StatsRegistry()
        reg.scalar("dup")
        with pytest.raises(KeyError):
            reg.scalar("dup")
        with pytest.raises(KeyError):
            reg.distribution("dup")


class TestDistribution:
    def test_moments_and_buckets(self):
        d = Distribution("occ", bucket_size=8)
        for v in (0, 3, 9, 17, 17):
            d.record(v)
        assert d.count == 5
        assert d.mean == pytest.approx(46 / 5)
        assert d.min == 0 and d.max == 17
        assert d.buckets == {0: 2, 8: 1, 16: 2}

    def test_weighted_record(self):
        d = Distribution("lat", bucket_size=50)
        d.record(200, weight=3)
        assert d.count == 3
        assert d.mean == 200
        assert d.buckets == {200: 3}

    def test_percentile(self):
        d = Distribution("x", bucket_size=1)
        for v in range(100):
            d.record(v)
        assert d.percentile(0.5) == pytest.approx(49, abs=2)

    def test_empty(self):
        d = Distribution("x")
        assert d.mean == 0.0
        assert d.percentile(0.9) == 0.0


class TestMarkAndDump:
    def test_deltas_since_mark(self):
        reg = StatsRegistry()
        s = reg.scalar("core.commit.committed")
        s.inc(100)
        reg.mark()
        s.inc(42)
        assert reg.deltas() == {"core.commit.committed": 42}

    def test_const_scalars_are_not_deltad(self):
        reg = StatsRegistry()
        reg.scalar("machine.bits", getter=lambda: 65824, const=True)
        reg.mark()
        assert reg.deltas() == {"machine.bits": 65824}

    def test_formula_sees_deltas(self):
        reg = StatsRegistry()
        insts = reg.scalar("i")
        cycles = reg.scalar("c")
        reg.formula("ipc", lambda v: v["i"] / v["c"] if v["c"] else 0.0)
        insts.inc(10)
        cycles.inc(10)
        reg.mark()
        insts.inc(30)
        cycles.inc(60)
        tree = reg.dump()
        assert tree["ipc"] == pytest.approx(0.5)

    def test_nested_tree(self):
        reg = StatsRegistry()
        reg.scalar("core.rob.pushed").inc(3)
        reg.scalar("core.rob.popped").inc(2)
        reg.distribution("mem.llc.lat", bucket_size=10).record(25)
        tree = reg.dump(since_mark=False)
        assert tree["core"]["rob"] == {"pushed": 3, "popped": 2}
        assert tree["mem"]["llc"]["lat"]["kind"] == "distribution"

    def test_flatten_roundtrip(self):
        reg = StatsRegistry()
        reg.scalar("a.b.c").inc(1)
        reg.scalar("a.b.d").inc(2)
        flat = flatten_tree(reg.dump(since_mark=False))
        assert flat == {"a.b.c": 1, "a.b.d": 2}

    def test_value_and_get(self):
        reg = StatsRegistry()
        reg.scalar("n").inc(6)
        reg.formula("double", lambda v: v["n"] * 2)
        assert reg.value("n") == 6
        assert reg.value("double") == 12
        assert "n" in reg and "nope" not in reg
        with pytest.raises(KeyError):
            reg.get("nope")
