"""End-to-end telemetry: attach, sample, trace, profile, reconcile."""

import json

import pytest

from repro import BASELINE, RAR, Telemetry, simulate
from repro.obs import flatten_tree, render_report, validate_chrome_trace


@pytest.fixture(scope="module")
def traced_run():
    tele = Telemetry(interval=200, trace=True, profile=True)
    result = simulate("mcf", BASELINE, RAR, instructions=3000, warmup=1500,
                      telemetry=tele)
    return tele, result


class TestReconciliation:
    def test_registry_deltas_match_result(self, traced_run):
        tele, r = traced_run
        flat = flatten_tree(tele.registry.dump())
        assert flat["core.commit.committed"] == r.instructions
        assert flat["core.clock.cycles"] == r.cycles
        assert flat["ace.total"] == r.abc_total
        assert flat["core.runahead.triggers"] == r.runahead_triggers
        assert flat["ace.head_blocked.bits"] == r.abc_head_blocked
        assert flat["core.ipc"] == pytest.approx(r.ipc)
        assert flat["ace.avf"] == pytest.approx(r.avf)
        for s, v in r.abc.items():
            assert flat[f"ace.{s}.bits"] == v

    def test_stats_dict_sections(self, traced_run):
        tele, r = traced_run
        d = tele.stats_dict(r)
        assert d["schema"] == "repro-stats-v1"
        assert d["result"]["instructions"] == r.instructions
        assert "stats" in d and "timeline" in d and "trace_summary" in d
        assert d["host_profile"]["instructions"] == r.instructions
        assert d["host_profile"]["kips"] > 0

    def test_stats_json_serialisable(self, traced_run, tmp_path):
        tele, r = traced_run
        path = str(tmp_path / "s.json")
        tele.write_stats(path, r)
        with open(path) as f:
            obj = json.load(f)
        assert obj["result"]["policy"] == "RAR"
        assert render_report(obj)  # renders without raising


class TestTimeline:
    def test_samples_cover_measured_window(self, traced_run):
        tele, r = traced_run
        rows = tele.sampler.rows
        assert len(rows) >= r.cycles // 200 - 1
        cycles = [row["cycle"] for row in rows]
        assert cycles == sorted(cycles)
        assert all(c % 200 == 0 for c in cycles)

    def test_sample_fields(self, traced_run):
        tele, _ = traced_run
        row = tele.sampler.rows[0]
        for key in ("cycle", "committed", "ipc", "rob_occ", "iq_occ",
                    "lq_occ", "sq_occ", "outstanding_misses", "mode",
                    "runahead_frac", "abc_rate"):
            assert key in row
        assert row["mode"] in ("NORMAL", "RUNAHEAD", "FLUSH_STALL")
        assert 0.0 <= row["runahead_frac"] <= 1.0

    def test_runahead_visible_in_timeline(self, traced_run):
        tele, r = traced_run
        assert r.runahead_cycles > 0
        assert any(row["runahead_frac"] > 0 for row in tele.sampler.rows)

    def test_jsonl_and_csv_export(self, traced_run, tmp_path):
        tele, _ = traced_run
        jpath, cpath = str(tmp_path / "t.jsonl"), str(tmp_path / "t.csv")
        n = tele.write_timeline(jpath)
        assert n == len(tele.sampler.rows)
        with open(jpath) as f:
            lines = [json.loads(line) for line in f]
        assert len(lines) == n
        assert tele.sampler.to_csv(cpath) == n
        with open(cpath) as f:
            header = f.readline().strip().split(",")
        assert "rob_occ" in header and "mode" in header

    def test_occupancy_distributions_recorded(self, traced_run):
        tele, _ = traced_run
        rob = tele.registry.get("core.rob.occupancy")
        assert rob.count == len(tele.sampler.rows)
        assert 0 <= rob.mean <= BASELINE.core.rob_size

    def test_stationary_workload_phase_is_zero(self, traced_run):
        tele, _ = traced_run
        assert all(row["phase"] == 0 for row in tele.sampler.rows)

    def test_phased_workload_phase_column(self):
        tele = Telemetry(interval=200)
        simulate("ph-swap-chase-stream", BASELINE, RAR,
                 instructions=4000, warmup=500, telemetry=tele)
        phases = {row["phase"] for row in tele.sampler.rows}
        assert phases >= {0, 1}  # the timeline sees the segment swaps


class TestTrace:
    def test_chrome_trace_valid(self, traced_run, tmp_path):
        tele, _ = traced_run
        path = str(tmp_path / "trace.json")
        tele.write_trace(path)
        with open(path) as f:
            obj = json.load(f)
        assert validate_chrome_trace(obj) is None

    def test_runahead_spans_match_triggers(self, traced_run):
        tele, r = traced_run
        counts = tele.tracer.summary()
        # The ring buffer may have dropped early events; never over-counts.
        assert 0 < counts.get("runahead", 0) <= r.runahead_triggers + 1
        assert counts.get("llc_miss", 0) > 0

    def test_miss_latency_distribution(self, traced_run):
        tele, _ = traced_run
        lat = tele.registry.get("mem.llc.miss_latency")
        assert lat.count > 0
        assert lat.min > 0  # a DRAM round-trip is never instantaneous


class TestDisabledTelemetryIsInert:
    def test_results_identical_with_and_without(self):
        plain = simulate("x264", BASELINE, RAR, instructions=600, warmup=300)
        tele = Telemetry(interval=100, trace=True)
        traced = simulate("x264", BASELINE, RAR, instructions=600,
                          warmup=300, telemetry=tele)
        assert plain == traced

    def test_core_without_telemetry_has_registry(self):
        from repro.core.core import OutOfOrderCore
        from repro.workloads.catalog import get_workload
        core = OutOfOrderCore(BASELINE, get_workload("x264").build_trace())
        assert core.telemetry is None
        assert "core.commit.committed" in core.registry


class TestProfiler:
    def test_stage_shares(self):
        tele = Telemetry(profile_stages=True)
        simulate("x264", BASELINE, "OOO", instructions=400, warmup=100,
                 telemetry=tele)
        shares = tele.profiler.stage_shares()
        assert shares
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in shares.values())

    def test_heartbeat_stream(self):
        import io
        stream = io.StringIO()
        tele = Telemetry(heartbeat_s=1e-9, stream=stream)
        simulate("mcf", BASELINE, "OOO", instructions=2000, warmup=500,
                 telemetry=tele)
        out = stream.getvalue()
        assert "KIPS" in out and "cycle" in out
