"""Additional property-based tests: trace files, timelines, predictors."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.enums import UopClass
from repro.isa.tracefile import load_trace, save_trace
from repro.isa.uop import NO_ADDR, StaticUop
from repro.reliability.timeline import avf_timeline

_CLASSES = [int(c) for c in UopClass]


@st.composite
def static_uops(draw):
    n = draw(st.integers(1, 60))
    uops = []
    for i in range(n):
        cls = draw(st.sampled_from(_CLASSES))
        is_mem = cls in (int(UopClass.LOAD), int(UopClass.STORE))
        srcs = tuple(sorted(set(
            draw(st.lists(st.integers(0, i - 1), max_size=3))))) if i else ()
        uops.append(StaticUop(
            idx=i,
            pc=draw(st.integers(0, 2 ** 40)),
            cls=cls,
            srcs=srcs,
            addr=draw(st.integers(0, 2 ** 40)) if is_mem else NO_ADDR,
            taken=draw(st.booleans()),
            target=draw(st.integers(0, 2 ** 40)),
        ))
    return uops


class TestTraceFileProperties:
    @given(static_uops())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_identity(self, uops):
        import tempfile
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "t.trace")
            save_trace(uops, path)
            loaded = load_trace(path)
            assert len(loaded) == len(uops)
            for i, orig in enumerate(uops):
                got = loaded.get(i)
                assert (got.idx, got.pc, got.cls, got.srcs, got.addr,
                        got.taken, got.target) == \
                       (orig.idx, orig.pc, orig.cls, orig.srcs, orig.addr,
                        orig.taken, orig.target)


@st.composite
def charge_intervals(draw):
    n = draw(st.integers(0, 25))
    out = []
    for _ in range(n):
        start = draw(st.integers(0, 400))
        length = draw(st.integers(1, 200))
        bits = draw(st.integers(1, 500))
        out.append(("rob", start, start + length, bits))
    return out


class TestTimelineProperties:
    @given(charge_intervals(), st.integers(1, 97))
    @settings(max_examples=100, deadline=None)
    def test_total_exposure_conserved(self, intervals, window):
        cycles = 700
        n = 10_000
        series = avf_timeline(intervals, n, cycles, window=window)
        total = sum(avf * n * min(window, cycles - start)
                    for start, avf in series)
        expected = sum(
            b * max(0, min(e, cycles) - max(s, 0))
            for _, s, e, b in intervals
        )
        assert abs(total - expected) < 1e-6 * max(1, expected)

    @given(charge_intervals())
    @settings(max_examples=50, deadline=None)
    def test_avf_nonnegative(self, intervals):
        for _, v in avf_timeline(intervals, 10_000, 500, window=50):
            assert v >= 0


class TestPredictorProperties:
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                    min_size=1, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_never_crashes_and_counts(self, stream):
        from repro.frontend.tage import TageScL
        p = TageScL(num_tables=3, table_size=64, bimodal_size=128)
        for pc, taken in stream:
            p.observe(0x1000 + pc * 4, taken)
        assert p.predictions == len(stream)
        assert 0 <= p.mispredictions <= p.predictions

    @given(st.integers(0, 2 ** 30), st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_prediction_is_boolean(self, pc, taken):
        from repro.frontend.tage import TageScL
        p = TageScL()
        assert isinstance(p.predict(pc), bool)
        p.observe(pc, taken)
        assert isinstance(p.predict(pc), bool)


class TestFaultInjectorProperty:
    @given(charge_intervals(), st.integers(1, 2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_hits_bounded_by_trials(self, intervals, seed):
        from repro.common.params import BASELINE
        from repro.reliability.fault_injection import FaultInjector
        inj = FaultInjector(intervals, BASELINE.core, cycles=700, seed=seed)
        res = inj.run(300)
        assert 0 <= res.hits <= res.trials
        assert sum(res.trials_by_structure.values()) == res.trials
        assert all(res.hits_by_structure.get(s, 0)
                   <= res.trials_by_structure.get(s, 0)
                   for s in res.hits_by_structure)
