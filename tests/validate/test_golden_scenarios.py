"""Golden scenario grid: trace fixtures + phased workloads fingerprinted
across the five policies, frozen in tests/golden/scenarios.json."""

import json
import os

import pytest

from repro.validate import golden
from repro.validate.golden import (
    GOLDEN_POLICIES,
    GOLDEN_SCENARIOS,
    GOLDEN_SCHEMA,
    check_scenarios,
    measure_scenario,
    regen_scenarios,
    scenario_points,
    scenario_workload,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")


class TestGrid:
    def test_point_grid(self):
        assert len(scenario_points()) == 20  # 4 scenarios x 5 policies
        names = {s for s, _ in scenario_points()}
        assert names == {"fixture:champsim", "fixture:gem5",
                         "ph-swap-chase-stream", "ph-burst-mpki"}

    def test_fixture_scenarios_resolve_to_imported_traces(self):
        from repro.workloads.tracewl import MaterializedTraceWorkload
        for name in ("fixture:champsim", "fixture:gem5"):
            wl = scenario_workload(name)
            assert isinstance(wl, MaterializedTraceWorkload)
            assert wl.name == name
            assert len(wl.build_trace()) > 1000

    def test_phased_scenarios_resolve_via_catalog(self):
        wl = scenario_workload("ph-burst-mpki")
        assert wl.phases

    def test_fixture_points_run_past_end_of_stream(self):
        """The frozen sizes request more instructions than the fixture
        holds, so the drain path is inside the fingerprint."""
        for name in ("fixture:champsim", "fixture:gem5"):
            instructions, warmup = GOLDEN_SCENARIOS[name]
            n_uops = len(scenario_workload(name).build_trace())
            assert warmup + instructions > n_uops


class TestFrozenFile:
    def test_frozen_scenarios_well_formed(self):
        with open(os.path.join(GOLDEN_DIR, "scenarios.json")) as f:
            payload = json.load(f)
        assert payload["schema"] == GOLDEN_SCHEMA
        assert set(payload["scenarios"]) == set(GOLDEN_SCENARIOS)
        for name, entry in payload["scenarios"].items():
            assert (entry["instructions"], entry["warmup"]) \
                == GOLDEN_SCENARIOS[name]
            assert set(entry["points"]) == set(GOLDEN_POLICIES)
            for point in entry["points"].values():
                assert len(point["fingerprint"]) == 64
                assert len(point["commit_digest"]) == 64
                assert point["cycles"] > 0


class TestRoundTrip:
    @pytest.fixture()
    def small_grid(self, monkeypatch, tmp_path):
        monkeypatch.setattr(golden, "GOLDEN_SCENARIOS",
                            {"fixture:gem5": (700, 100)})
        monkeypatch.setattr(golden, "GOLDEN_POLICIES", ("OOO", "RAR"))
        directory = str(tmp_path / "golden")
        regen_scenarios(directory)
        return directory

    def test_regen_then_check_ok(self, small_grid):
        assert check_scenarios(small_grid) == []

    def test_measure_scenario_deterministic(self):
        a = measure_scenario("fixture:gem5", "RAR", instructions=700,
                             warmup=100)
        b = measure_scenario("fixture:gem5", "RAR", instructions=700,
                             warmup=100)
        assert a == b

    def test_drift_detected(self, small_grid):
        path = os.path.join(small_grid, "scenarios.json")
        with open(path) as f:
            payload = json.load(f)
        payload["scenarios"]["fixture:gem5"]["points"]["RAR"][
            "fingerprint"] = "0" * 64
        with open(path, "w") as f:
            json.dump(payload, f)
        problems = check_scenarios(small_grid)
        assert len(problems) == 1
        assert "fixture:gem5/RAR" in problems[0]

    def test_missing_file_detected(self, tmp_path):
        problems = check_scenarios(str(tmp_path))
        assert len(problems) == 1
        assert "missing golden file" in problems[0]

    def test_missing_scenario_detected(self, small_grid, monkeypatch):
        monkeypatch.setattr(
            golden, "GOLDEN_SCENARIOS",
            {"fixture:gem5": (700, 100), "fixture:champsim": (700, 100)})
        problems = check_scenarios(small_grid)
        assert any("fixture:champsim" in p for p in problems)

    def test_stale_schema_detected(self, small_grid):
        path = os.path.join(small_grid, "scenarios.json")
        with open(path) as f:
            payload = json.load(f)
        payload["schema"] = GOLDEN_SCHEMA + 1
        with open(path, "w") as f:
            json.dump(payload, f)
        problems = check_scenarios(small_grid)
        assert any("schema" in p for p in problems)

    def test_check_uses_frozen_run_sizes(self, small_grid, monkeypatch):
        """Sizes come from the file, not the module constants."""
        monkeypatch.setattr(golden, "GOLDEN_SCENARIOS",
                            {"fixture:gem5": (999, 111)})
        assert check_scenarios(small_grid) == []


@pytest.mark.slow
class TestFullScenarioMatrix:
    """The real frozen scenario grid, serially and forked."""

    def test_frozen_scenarios_conformant_serial(self):
        assert check_scenarios(GOLDEN_DIR, jobs=1) == []

    def test_frozen_scenarios_conformant_parallel(self):
        assert check_scenarios(GOLDEN_DIR, jobs=4) == []
