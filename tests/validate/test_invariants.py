"""The per-cycle invariant sanitizer: clean runs pass, corruption raises."""

import pytest

from repro.checkpoint import simulate_from, warm_checkpoint
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.sim import simulate
from repro.validate import InvariantChecker, InvariantViolation
from repro.workloads.catalog import get_workload


def sanitized_core(workload="mcf", policy="RAR", instructions=1500,
                   record_ace_intervals=False):
    """A core run under the sanitizer, returned live for corruption."""
    from repro.core.runahead import get_policy
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(), get_policy(policy),
                          record_ace_intervals=record_ace_intervals,
                          validate=True)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    core.run(instructions)
    return core


class TestCleanRuns:
    def test_disabled_by_default(self):
        spec = get_workload("x264")
        core = OutOfOrderCore(BASELINE, spec.build_trace())
        assert core.checker is None
        # No extra pipeline stage when the sanitizer is off.
        assert all(c.name != "invariant_checker"
                   for c in core.engine._pipeline)

    def test_checker_outside_components(self):
        """The checker must stay out of the checkpoint blob."""
        core = sanitized_core(instructions=200)
        assert core.checker is not None
        assert core.checker not in core.components
        assert core.engine._pipeline[-1] is core.checker

    @pytest.mark.parametrize("policy", ["OOO", "FLUSH", "TR", "PRE", "RAR"])
    def test_all_mechanisms_pass(self, policy):
        core = sanitized_core(policy=policy)
        core.checker.final_check()
        s = core.checker.summary()
        assert s["cycles_checked"] > 0
        assert s["commits_checked"] >= 1500

    def test_bit_identical_with_and_without(self):
        kw = dict(instructions=1500, warmup=500)
        a = simulate("mcf", BASELINE, "RAR", **kw)
        b = simulate("mcf", BASELINE, "RAR", validate=True, **kw)
        assert a.to_dict() == b.to_dict()

    def test_ace_intervals_checked(self):
        core = sanitized_core(record_ace_intervals=True)
        core.checker.final_check()
        assert core.checker.summary()["ace_intervals_checked"] > 0

    def test_checkpoint_forks_orthogonal_to_sanitizer(self):
        """Sanitized and unsanitized cores exchange checkpoints freely."""
        ck = warm_checkpoint("mcf", BASELINE, "PRE", warmup=500,
                             validate=True)
        plain = simulate_from(ck, "PRE", instructions=1000)
        checked = simulate_from(ck, "PRE", instructions=1000, validate=True)
        assert plain.to_dict() == checked.to_dict()


class TestDetection:
    def test_lsq_double_release_detected(self):
        """The historical bug: a load's flag cleared without the counter
        moving (silent double release). The reconciliation sweep must
        catch it on the very next cycle."""
        core = sanitized_core(policy="OOO", instructions=300)
        while not any(u.in_lq for u in core.rob):
            core.engine.step()
            core.engine.cycle += 1
        victim = next(u for u in core.rob if u.in_lq)
        victim.in_lq = False  # counter now over-reports by one
        with pytest.raises(InvariantViolation, match="lsq-reconcile"):
            core.checker.check_cycle(core.cycle)

    def test_rob_age_order_violation(self):
        core = sanitized_core(instructions=300)
        while len(core.rob) < 2:
            core.engine.step()
            core.engine.cycle += 1
        core.rob._q.append(core.rob.head)  # duplicate oldest at the tail
        with pytest.raises(InvariantViolation, match="rob-order"):
            core.checker.check_cycle(core.cycle)

    def test_rob_capacity_violation(self):
        core = sanitized_core(instructions=300)
        while len(core.rob) < 2:
            core.engine.step()
            core.engine.cycle += 1
        core.rob.size = len(core.rob) - 1
        with pytest.raises(InvariantViolation, match="rob-capacity"):
            core.checker.check_cycle(core.cycle)

    def test_register_leak_detected(self):
        core = sanitized_core(instructions=300)
        core.regs.int_free += 1  # a register materialises from nowhere
        with pytest.raises(InvariantViolation, match="reg-leak"):
            core.checker.check_cycle(core.cycle)

    def test_prdq_phantom_entry_detected(self):
        core = sanitized_core(instructions=300)
        core.prdq._q.append((1 << 60, False))  # entry with no borrow
        with pytest.raises(InvariantViolation, match="prdq-leak"):
            core.checker.check_cycle(core.cycle)

    def test_commit_out_of_order_detected(self):
        core = sanitized_core(policy="OOO", instructions=300)
        core.checker._last_commit_seq = 1 << 60
        with pytest.raises(InvariantViolation, match="rob-order"):
            core.run(50)

    def test_malformed_ace_interval_detected(self):
        core = sanitized_core(record_ace_intervals=True, instructions=300)
        core.ace.intervals.append(("rob", 100, 50, 120))  # end < start
        with pytest.raises(InvariantViolation, match="ace-interval"):
            core.checker.check_cycle(core.cycle)

    def test_unknown_ace_structure_detected(self):
        core = sanitized_core(record_ace_intervals=True, instructions=300)
        core.ace.intervals.append(("tlb", 0, 10, 64))
        with pytest.raises(InvariantViolation, match="ace-interval"):
            core.checker.check_cycle(core.cycle)

    def test_ace_capacity_overflow_detected(self):
        from repro.reliability.fault_injection import structure_bits
        core = sanitized_core(record_ace_intervals=True, instructions=300)
        cap = structure_bits(BASELINE.core)["iq"]
        core.ace.intervals.append(("iq", 0, 1, cap + 1))
        core.checker._ace_seen = len(core.ace.intervals)  # skip well-formed
        with pytest.raises(InvariantViolation, match="ace-capacity"):
            core.checker.final_check()

    def test_formula_drift_detected(self):
        core = sanitized_core(instructions=300)
        core.registry.get("core.ipc").fn = lambda v: 0.123  # stale formula
        with pytest.raises(InvariantViolation, match="stats-formula"):
            core.checker.final_check()

    def test_violation_carries_location(self):
        v = InvariantViolation("lsq-reconcile", 42, "boom")
        assert v.invariant == "lsq-reconcile"
        assert v.cycle == 42
        assert "cycle 42" in str(v) and "boom" in str(v)
        assert isinstance(v, AssertionError)


class TestChecker:
    def test_step_is_pure_observation(self):
        core = sanitized_core(instructions=300)
        assert isinstance(core.checker, InvariantChecker)
        assert core.checker.step(core.cycle) == 0
        assert core.checker.state_attrs == ()
        assert core.checker.wake_candidates(core.cycle) == ()


class TestEventDrivenDetection:
    """PR 4's incremental fast paths: ready lists, FU scoreboard and
    component quiescence must stay coherent with their ground truth."""

    @staticmethod
    def _step_until(core, cond, limit=5000):
        for _ in range(limit):
            if cond():
                return
            core.engine.step()
            core.engine.cycle += 1
        raise AssertionError("condition never reached")

    def test_effort_counters(self):
        core = sanitized_core(instructions=800)
        s = core.checker.summary()
        assert s["ready_uops_checked"] > 0
        assert s["fu_events_checked"] > 0

    def test_nready_drift_detected(self):
        core = sanitized_core(instructions=300)
        core.iq._nready += 1
        with pytest.raises(InvariantViolation, match="iq-ready-coherence"):
            core.checker.check_cycle(core.cycle)

    def test_nonempty_mask_drift_detected(self):
        core = sanitized_core(instructions=300)
        empty = next(i for i, dq in enumerate(core.iq._ready) if not dq)
        core.iq._nonempty |= 1 << empty
        with pytest.raises(InvariantViolation, match="iq-ready-coherence"):
            core.checker.check_cycle(core.cycle)

    def test_ready_uop_with_pending_detected(self):
        core = sanitized_core(policy="OOO", instructions=300)
        self._step_until(core, lambda: core.iq._nready > 0)
        victim = next(dq[0] for dq in core.iq._ready if dq)
        victim.pending = 1
        with pytest.raises(InvariantViolation, match="iq-ready-coherence"):
            core.checker.check_cycle(core.cycle)

    def test_waiting_pending_drift_detected(self):
        core = sanitized_core(policy="OOO", instructions=300)
        self._step_until(core, lambda: core.iq._waiting)
        victim = next(iter(core.iq._waiting))
        victim.pending += 1  # claims a producer that does not exist
        with pytest.raises(InvariantViolation, match="iq-ready-coherence"):
            core.checker.check_cycle(core.cycle)

    def test_fu_pipelined_scoreboard_drift_detected(self):
        core = sanitized_core(instructions=300)
        fus = core.fus
        fc = next(c for c, p in fus.params.items() if p.pipelined)
        fus._stamp[fc] = core.cycle
        fus._used[fc] = fus.params[fc].count + 1  # phantom issues
        with pytest.raises(InvariantViolation, match="fu-scoreboard"):
            core.checker.check_cycle(core.cycle)

    def test_fu_nonpipelined_scoreboard_drift_detected(self):
        core = sanitized_core(instructions=300)
        fus = core.fus
        fc = next(c for c, p in fus.params.items() if not p.pipelined)
        # Reserve every divider with no writeback event backing it.
        fus._unit_free[fc] = [core.cycle + 100] * len(fus._unit_free[fc])
        with pytest.raises(InvariantViolation, match="fu-scoreboard"):
            core.checker.check_cycle(core.cycle)

    def test_backend_false_quiesce_detected(self):
        core = sanitized_core(policy="OOO", instructions=300)
        core.backend.quiesced = True  # OOO never leaves NORMAL mode
        with pytest.raises(InvariantViolation, match="quiesce-coherence"):
            core.checker.check_cycle(core.cycle)

    def test_frontend_false_quiesce_detected(self):
        core = sanitized_core(policy="OOO", instructions=300)
        core.frontend_stage.quiesced = True
        with pytest.raises(InvariantViolation, match="quiesce-coherence"):
            core.checker.check_cycle(core.cycle)
