"""Differential harness: payload diffing, timeline bisection, verdicts."""

import pytest

from repro.common.params import BASELINE
from repro.validate import diff as diffmod
from repro.validate.diff import (
    DiffReport,
    Divergence,
    FieldDiff,
    _bisect_timeline,
    _diff_payloads,
    _flatten,
    differential_check,
)


class TestPayloadDiff:
    def test_flatten_nests_dotted(self):
        flat = _flatten({"a": 1, "abc": {"rob": 2, "iq": 3}})
        assert flat == {"a": 1, "abc.rob": 2, "abc.iq": 3}

    def test_identical_payloads_no_diffs(self):
        p = {"ipc": 0.5, "abc": {"rob": 10}}
        assert _diff_payloads(p, dict(p)) == []

    def test_nested_field_difference(self):
        a = {"ipc": 0.5, "abc": {"rob": 10, "iq": 4}}
        b = {"ipc": 0.5, "abc": {"rob": 11, "iq": 4}}
        diffs = _diff_payloads(a, b)
        assert diffs == [FieldDiff(field="abc.rob", ref=10, other=11)]

    def test_missing_key_reported(self):
        diffs = _diff_payloads({"x": 1, "y": 2}, {"x": 1})
        assert diffs == [FieldDiff(field="y", ref=2, other="<missing>")]

    def test_type_drift_reported(self):
        # 1 == 1.0 in Python; a serialisation type change is still a diff.
        diffs = _diff_payloads({"cycles": 1}, {"cycles": 1.0})
        assert len(diffs) == 1 and diffs[0].field == "cycles"

    def test_float_ulp_is_a_divergence(self):
        a, b = 0.1 + 0.2, 0.3  # differ by one ULP
        assert _diff_payloads({"ipc": a}, {"ipc": b})


class TestBisection:
    def test_first_differing_row(self):
        ref = [{"cycle": 500, "ipc": 1.0}, {"cycle": 1000, "ipc": 0.8},
               {"cycle": 1500, "ipc": 0.7}]
        other = [{"cycle": 500, "ipc": 1.0}, {"cycle": 1000, "ipc": 0.9},
                 {"cycle": 1500, "ipc": 0.1}]
        hit = _bisect_timeline(ref, other)
        assert hit == {"cycle": 1000, "fields": {"ipc": [0.8, 0.9]}}

    def test_row_count_mismatch(self):
        ref = [{"cycle": 500, "ipc": 1.0}]
        other = [{"cycle": 500, "ipc": 1.0}, {"cycle": 1000, "ipc": 0.9}]
        hit = _bisect_timeline(ref, other)
        assert hit["fields"] == {"<row-count>": [1, 2]}

    def test_identical_or_absent_timelines(self):
        rows = [{"cycle": 500, "ipc": 1.0}]
        assert _bisect_timeline(rows, list(rows)) is None
        assert _bisect_timeline(None, rows) is None
        assert _bisect_timeline(rows, []) is None


class TestValidation:
    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown path"):
            differential_check("mcf", BASELINE, "RAR", paths=("facade", "x"))

    def test_single_path_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            differential_check("mcf", BASELINE, "RAR", paths=("facade",))


class TestHarness:
    def test_facade_vs_fork_identical(self):
        report = differential_check(
            "libquantum", BASELINE, "PRE", instructions=1200, warmup=400,
            paths=("facade", "fork"))
        assert report.identical
        assert report.divergences == []
        assert set(report.results) == {"facade", "fork"}
        assert "bit-identical" in report.summary()

    def test_multiprocess_path_identical(self):
        report = differential_check(
            "x264", BASELINE, "OOO", instructions=800, warmup=200,
            paths=("facade", "mp"))
        assert report.identical

    def test_sanitized_diff(self):
        report = differential_check(
            "libquantum", BASELINE, "RAR", instructions=800, warmup=200,
            paths=("facade", "fork"), validate=True)
        assert report.identical

    def test_report_round_trips_to_json(self):
        import json
        report = differential_check(
            "x264", BASELINE, "OOO", instructions=600, warmup=200,
            paths=("facade", "fork"))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["identical"] is True
        assert payload["paths"] == ["facade", "fork"]

    def test_divergence_detected_and_bisected(self, monkeypatch):
        """A seeded fake divergence must be caught, diffed field-by-field
        and bisected to its first divergent timeline interval."""
        def fake_run_point(task):
            path, interval = task[0], task[8]
            ipc = 0.5 if path == "facade" else 0.25
            payload = {"result": {"workload": "mcf", "ipc": ipc,
                                  "abc": {"rob": 10 if path == "facade"
                                          else 12}},
                       "timeline": None}
            if interval:
                payload["timeline"] = [
                    {"cycle": 500, "ipc": 0.5},
                    {"cycle": 1000, "ipc": ipc},
                ]
            return payload

        monkeypatch.setattr(diffmod, "_run_point", fake_run_point)
        report = differential_check(
            "mcf", BASELINE, "RAR", instructions=1000, warmup=0,
            paths=("facade", "fork"), bisect_interval=500)
        assert not report.identical
        (div,) = report.divergences
        assert div.ref_path == "facade" and div.other_path == "fork"
        fields = {f.field: (f.ref, f.other) for f in div.fields}
        assert fields["ipc"] == (0.5, 0.25)
        assert fields["abc.rob"] == (10, 12)
        assert div.first_interval == {"cycle": 1000,
                                      "fields": {"ipc": [0.5, 0.25]}}
        assert "DIVERGED" in report.summary()
        assert "cycle 1000" in report.summary()

    def test_divergence_without_bisection(self, monkeypatch):
        def fake_run_point(task):
            return {"result": {"ipc": 0.5 if task[0] == "facade" else 0.6},
                    "timeline": None}

        monkeypatch.setattr(diffmod, "_run_point", fake_run_point)
        report = differential_check(
            "mcf", BASELINE, "RAR", paths=("facade", "fork"),
            bisect_interval=0)
        assert not report.identical
        assert report.divergences[0].first_interval is None


class TestReportTypes:
    def test_divergence_to_dict(self):
        d = Divergence(ref_path="facade", other_path="fork",
                       fields=[FieldDiff("ipc", 1, 2)],
                       first_interval={"cycle": 5, "fields": {}})
        payload = d.to_dict()
        assert payload["fields"] == [{"field": "ipc", "ref": 1, "other": 2}]
        assert payload["first_interval"]["cycle"] == 5

    def test_report_identical_property(self):
        r = DiffReport(workload="w", machine="m", policy="p",
                       instructions=1, warmup=0, seed=None,
                       paths=("facade", "fork"))
        assert r.identical
        r.divergences.append(Divergence("facade", "fork", []))
        assert not r.identical
