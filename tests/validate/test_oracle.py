"""The commit-stream architectural oracle: clean runs pass, every check
fires on corruption, finite traces end in a clean terminal commit."""

import pytest

from repro.checkpoint import simulate_from, warm_checkpoint
from repro.common.enums import Mode, UopClass
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.runahead import get_policy
from repro.isa.trace import Trace
from repro.isa.uop import NO_ADDR, DynUop, StaticUop
from repro.sim import simulate
from repro.validate import CommitOracle, OracleViolation, attach_oracle
from repro.workloads.catalog import get_workload

_ADD = int(UopClass.INT_ADD)
_LOAD = int(UopClass.LOAD)
_BRANCH = int(UopClass.BRANCH)


def oracled_core(workload="mcf", policy="RAR", instructions=1500):
    """A core run under the oracle, returned live for corruption."""
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(), get_policy(policy))
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    attach_oracle(core)
    core.run(instructions)
    return core


def conforming_uop(oracle, ref=None):
    """A dynamic instance that passes every oracle check for the walk's
    next reference uop — the baseline each corruption test perturbs."""
    if ref is None:
        ref = oracle.trace.get(oracle.next_idx)
        assert ref is not None
    u = DynUop(ref, seq=1 << 40)
    u.completed = True
    if ref.is_load:
        u.in_lq = True
    if ref.is_store:
        u.in_sq = True
    return u


def seek_class(oracle, cls):
    """Advance the oracle's walk to the next reference uop of ``cls``."""
    idx = oracle.next_idx
    while True:
        ref = oracle.trace.get(idx)
        assert ref is not None, f"no uop of class {cls} ahead of the walk"
        if ref.cls == cls:
            oracle.next_idx = idx
            return ref
        idx += 1


def finite_trace(n, name="finite"):
    return Trace.from_list(
        [StaticUop(idx=i, pc=0x1000 + 4 * i, cls=_ADD) for i in range(n)],
        name=name)


class TestCleanRuns:
    def test_disabled_by_default(self):
        spec = get_workload("x264")
        core = OutOfOrderCore(BASELINE, spec.build_trace())
        assert core.oracle is None
        assert core.commit_unit.commit_hook is None

    @pytest.mark.parametrize("policy",
                             ["OOO", "FLUSH", "TR", "PRE", "RAR"])
    def test_lockstep_passes(self, policy):
        core = oracled_core(policy=policy)
        core.oracle.final_check()
        s = core.oracle.summary()
        assert s["commits"] >= 1500
        assert s["branches"] > 0
        assert len(s["digest"]) == 64

    def test_bit_identical_with_and_without(self):
        kw = dict(instructions=1500, warmup=500)
        a = simulate("mcf", BASELINE, "RAR", **kw)
        b = simulate("mcf", BASELINE, "RAR", oracle=True, **kw)
        assert a.to_dict() == b.to_dict()

    def test_digest_deterministic(self):
        a = oracled_core(instructions=800)
        b = oracled_core(instructions=800)
        assert a.oracle.commits == b.oracle.commits
        assert a.oracle.digest() == b.oracle.digest()

    def test_checkpoint_fork_resumes_walk(self):
        """A fork's oracle picks up mid-stream and the result matches a
        plain fork bit for bit."""
        ck = warm_checkpoint("mcf", BASELINE, "PRE", warmup=500)
        plain = simulate_from(ck, "PRE", instructions=1000)
        checked = simulate_from(ck, "PRE", instructions=1000, oracle=True)
        assert plain.to_dict() == checked.to_dict()
        core = ck.fork(oracle=True)
        assert core.oracle.start_idx >= 500
        core.run(1000)
        core.oracle.final_check()
        assert core.oracle.commits >= 1000

    def test_oracle_outside_checkpoint_state(self):
        """The hook is wiring, not state: a checkpoint captured from an
        oracle'd core restores into a plain one with no hook attached."""
        spec = get_workload("mcf")
        core = OutOfOrderCore(BASELINE, spec.build_trace(),
                              get_policy("OOO"))
        attach_oracle(core)
        core.run(300)
        from repro.checkpoint import Checkpoint
        ck = Checkpoint.capture(core, "mcf", 300, None)
        fork = ck.fork()
        assert fork.oracle is None
        assert fork.commit_unit.commit_hook is None

    def test_hook_chaining_preserved(self):
        """Attaching the oracle over an existing hook keeps both firing."""
        spec = get_workload("mcf")
        core = OutOfOrderCore(BASELINE, spec.build_trace(),
                              get_policy("OOO"))
        seen = []
        core.commit_unit.commit_hook = lambda u, c: seen.append(u.seq)
        attach_oracle(core)
        core.run(200)
        assert len(seen) == core.oracle.commits >= 200


class TestDetection:
    """Every oracle check fires on the corruption it guards against."""

    def test_idx_sequence_skip(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        ref = oracle.trace.get(oracle.next_idx + 5)
        u = conforming_uop(oracle, ref)  # retires 5 uops too early
        with pytest.raises(OracleViolation, match="idx-sequence"):
            oracle.on_commit(u, core.cycle)

    def test_idx_sequence_replay(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        ref = oracle.trace.get(oracle.next_idx - 1)
        u = conforming_uop(oracle, ref)  # already-retired index again
        with pytest.raises(OracleViolation, match="idx-sequence"):
            oracle.on_commit(u, core.cycle)

    def test_uop_mismatch_forged_addr(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        ref = oracle.trace.get(oracle.next_idx)
        forged = StaticUop(idx=ref.idx, pc=ref.pc, cls=ref.cls,
                           srcs=ref.srcs, addr=ref.addr + 64,
                           taken=ref.taken, target=ref.target)
        with pytest.raises(OracleViolation, match="uop-mismatch"):
            oracle.on_commit(conforming_uop(oracle, forged), core.cycle)

    def test_uop_mismatch_forged_pc(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        ref = oracle.trace.get(oracle.next_idx)
        forged = StaticUop(idx=ref.idx, pc=ref.pc ^ 0x40, cls=ref.cls,
                           srcs=ref.srcs, addr=ref.addr,
                           taken=ref.taken, target=ref.target)
        with pytest.raises(OracleViolation, match="uop-mismatch"):
            oracle.on_commit(conforming_uop(oracle, forged), core.cycle)

    def test_uop_mismatch_incomplete(self):
        core = oracled_core(instructions=300)
        u = conforming_uop(core.oracle)
        u.completed = False  # retiring before execution finished
        with pytest.raises(OracleViolation, match="uop-mismatch"):
            core.oracle.on_commit(u, core.cycle)

    def test_branch_outcome_flipped(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        ref = seek_class(oracle, _BRANCH)
        forged = StaticUop(idx=ref.idx, pc=ref.pc, cls=ref.cls,
                           srcs=ref.srcs, addr=ref.addr,
                           taken=not ref.taken, target=ref.target)
        with pytest.raises(OracleViolation, match="branch-outcome"):
            oracle.on_commit(conforming_uop(oracle, forged), core.cycle)

    def test_branch_outcome_wrong_target(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        ref = seek_class(oracle, _BRANCH)
        forged = StaticUop(idx=ref.idx, pc=ref.pc, cls=ref.cls,
                           srcs=ref.srcs, addr=ref.addr,
                           taken=ref.taken, target=ref.target ^ 0x1000)
        with pytest.raises(OracleViolation, match="branch-outcome"):
            oracle.on_commit(conforming_uop(oracle, forged), core.cycle)

    def test_runahead_mode_commit(self):
        core = oracled_core(instructions=300)
        u = conforming_uop(core.oracle)
        saved = core.runahead_ctl.mode
        core.runahead_ctl.mode = Mode.RUNAHEAD
        try:
            with pytest.raises(OracleViolation, match="runahead-commit"):
                core.oracle.on_commit(u, core.cycle)
        finally:
            core.runahead_ctl.mode = saved

    def test_runahead_instance_commit(self):
        core = oracled_core(instructions=300)
        u = conforming_uop(core.oracle)
        u.runahead = True
        with pytest.raises(OracleViolation, match="runahead-commit"):
            core.oracle.on_commit(u, core.cycle)

    def test_wrong_path_commit(self):
        core = oracled_core(instructions=300)
        u = conforming_uop(core.oracle)
        u.wrong_path = True
        with pytest.raises(OracleViolation, match="wrong-path-commit"):
            core.oracle.on_commit(u, core.cycle)

    def test_double_retire_squashed(self):
        core = oracled_core(instructions=300)
        u = conforming_uop(core.oracle)
        u.squashed = True
        with pytest.raises(OracleViolation, match="double-retire"):
            core.oracle.on_commit(u, core.cycle)

    def test_double_retire_same_instance(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        u = conforming_uop(oracle)
        oracle.on_commit(u, core.cycle)  # legitimate retirement
        u2 = conforming_uop(oracle)
        u2.seq = u.seq  # the same dynamic instance retires again
        with pytest.raises(OracleViolation, match="double-retire"):
            oracle.on_commit(u2, core.cycle)

    def test_commit_order_regression(self):
        core = oracled_core(instructions=300)
        u = conforming_uop(core.oracle)
        with pytest.raises(OracleViolation, match="commit-order"):
            core.oracle.on_commit(u, core.oracle.last_commit_cycle - 1)

    def test_lsq_reconcile_load_without_entry(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        seek_class(oracle, _LOAD)
        u = conforming_uop(oracle)
        u.in_lq = False  # LQ entry vanished before retirement
        with pytest.raises(OracleViolation, match="lsq-reconcile"):
            oracle.on_commit(u, core.cycle)

    def test_lsq_reconcile_counter_drift(self):
        core = oracled_core(instructions=300)
        oracle = core.oracle
        seek_class(oracle, _LOAD)
        u = conforming_uop(oracle)
        saved = core.lsq.lq_used
        core.lsq.lq_used = 0  # counter lost the entry
        try:
            with pytest.raises(OracleViolation, match="lsq-reconcile"):
                oracle.on_commit(u, core.cycle)
        finally:
            core.lsq.lq_used = saved

    def test_live_pipeline_detects_forged_head(self):
        """Not just the hook in isolation: forging the ROB head's static
        record mid-run trips the oracle inside ``core.run``."""
        core = oracled_core(instructions=300)
        while len(core.rob) == 0:
            core.engine.step()
            core.engine.cycle += 1
        head = core.rob.head
        st = head.static
        head.static = StaticUop(idx=st.idx + 7, pc=st.pc, cls=st.cls,
                                srcs=st.srcs, addr=st.addr,
                                taken=st.taken, target=st.target)
        with pytest.raises(OracleViolation, match="idx-sequence"):
            core.run(100)

    def test_final_check_commit_count(self):
        core = oracled_core(instructions=300)
        core.oracle.commits += 1  # a commit the walk never saw
        with pytest.raises(OracleViolation, match="idx-sequence"):
            core.oracle.final_check()

    def test_terminal_commit_truncated_stream(self):
        """expect_drained on a stream with uops left = truncated tail."""
        core = oracled_core(instructions=300)
        core.oracle.final_check()  # sane without the drained claim
        with pytest.raises(OracleViolation, match="terminal-commit"):
            core.oracle.final_check(expect_drained=True)

    def test_terminal_commit_stuck_window(self):
        trace = finite_trace(40)
        core = OutOfOrderCore(BASELINE, trace, get_policy("OOO"))
        attach_oracle(core)
        core.run(10_000)
        core.oracle.final_check(expect_drained=True)  # clean drain
        core.rob._q.append(conforming_uop(core.oracle,
                                          trace.get(0)))  # zombie uop
        with pytest.raises(OracleViolation, match="terminal-commit"):
            core.oracle.final_check(expect_drained=True)

    def test_violation_carries_location(self):
        v = OracleViolation("idx-sequence", 42, "boom")
        assert v.check == "idx-sequence"
        assert v.cycle == 42
        assert "cycle 42" in str(v) and "boom" in str(v)
        assert isinstance(v, AssertionError)


class TestEndOfStream:
    """Finite traces end in a clean terminal commit, not a deadlock or a
    truncated tail — including when a squash rewinds the fetch cursor
    right at the end of the stream."""

    @pytest.mark.parametrize("n", [0, 1, 3, 50])
    def test_finite_trace_commits_everything(self, n):
        r = simulate(finite_trace(n), BASELINE, "RAR",
                     instructions=10_000, warmup=0,
                     oracle=True, validate=True)
        assert r.instructions == n

    def test_exhausted_flag(self):
        core = OutOfOrderCore(BASELINE, finite_trace(5), get_policy("OOO"))
        assert not core.engine.exhausted
        core.run(10_000)
        assert core.engine.exhausted
        assert core.stats.committed == 5

    def test_budget_within_stream_not_exhausted(self):
        core = OutOfOrderCore(BASELINE, finite_trace(50), get_policy("OOO"))
        core.run(10)
        assert not core.engine.exhausted
        assert core.stats.committed >= 10

    def test_squash_rewind_at_end_of_stream(self):
        """A mispredicted branch just before the end rewinds the fetch
        cursor past material the trace no longer extends; termination
        must still retire every uop exactly once."""
        uops = [StaticUop(idx=i, pc=0x1000 + 4 * i, cls=_ADD)
                for i in range(30)]
        uops.append(StaticUop(idx=30, pc=0x1000 + 4 * 30, cls=_BRANCH,
                              taken=True, target=0x9000))
        uops.extend(StaticUop(idx=i, pc=0x9000 + 4 * (i - 31), cls=_ADD)
                    for i in range(31, 42))
        trace = Trace.from_list(uops, name="eos-squash")
        r = simulate(trace, BASELINE, "RAR", instructions=10_000,
                     warmup=0, oracle=True, validate=True)
        assert r.instructions == 42
        assert r.branch_mispredicts >= 1

    def test_mem_uops_at_end_of_stream(self):
        uops = []
        for i in range(20):
            cls = _LOAD if i % 3 == 0 else _ADD
            addr = 0x100000 + 64 * i if cls == _LOAD else NO_ADDR
            uops.append(StaticUop(idx=i, pc=0x1000 + 4 * i, cls=cls,
                                  addr=addr))
        r = simulate(Trace.from_list(uops, name="eos-mem"), BASELINE,
                     "RAR", instructions=10_000, warmup=0,
                     oracle=True, validate=True)
        assert r.instructions == 20

    def test_trace_get_negative_raises(self):
        trace = finite_trace(4)
        with pytest.raises(IndexError, match="non-negative"):
            trace.get(-1)

    def test_trace_exhausted_property(self):
        trace = finite_trace(4)
        assert trace.exhausted  # from_list is born exhausted
        assert trace.get(4) is None
        lazy = Trace(iter([StaticUop(idx=0, pc=0x1000, cls=_ADD)]))
        assert not lazy.exhausted
        assert lazy.get(1) is None
        assert lazy.exhausted

    def test_genuine_deadlock_still_raises(self):
        """The drained-stream exit must not swallow real deadlocks."""
        core = OutOfOrderCore(BASELINE, finite_trace(20), get_policy("OOO"))
        core.run(5)
        # Strand a uop: clear every wake source while work is in flight.
        assert len(core.rob) > 0
        core.engine._events.clear()
        for u in core.rob:
            u.pending = 1 << 20
        core.iq._nonempty = 0
        with pytest.raises(RuntimeError, match="deadlock"):
            core.run(15)


class TestOracleObject:
    def test_attach_returns_and_registers(self):
        core = OutOfOrderCore(BASELINE, finite_trace(10), get_policy("OOO"))
        oracle = attach_oracle(core)
        assert isinstance(oracle, CommitOracle)
        assert core.oracle is oracle
        assert core.commit_unit.commit_hook == oracle.on_commit

    def test_summary_shape(self):
        core = oracled_core(instructions=300)
        s = core.oracle.summary()
        assert set(s) == {"commits", "branches", "taken_branches",
                          "next_idx", "digest"}
        assert s["next_idx"] == core.oracle.start_idx + s["commits"]
