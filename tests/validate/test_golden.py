"""Golden conformance fingerprints: canonical hashing, freeze/check
round-trip, drift detection, and (slow tier) the full frozen matrix."""

import json
import os

import pytest

from repro.common.params import BASELINE
from repro.validate import golden
from repro.validate.golden import (
    GOLDEN_MACHINES,
    GOLDEN_POLICIES,
    GOLDEN_SCHEMA,
    canonical_fingerprint,
    check_golden,
    golden_points,
    measure_point,
    regen_golden,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")


class TestCanonicalFingerprint:
    def test_key_order_independent(self):
        a = canonical_fingerprint({"x": 1, "y": [1, 2], "z": {"a": 0.5}})
        b = canonical_fingerprint({"z": {"a": 0.5}, "y": [1, 2], "x": 1})
        assert a == b
        assert len(a) == 64

    def test_value_sensitive(self):
        base = {"result": {"ipc": 0.5, "cycles": 100}, "digest": "aa"}
        drifted = {"result": {"ipc": 0.5, "cycles": 101}, "digest": "aa"}
        assert canonical_fingerprint(base) != canonical_fingerprint(drifted)

    def test_list_order_sensitive(self):
        assert (canonical_fingerprint([1, 2])
                != canonical_fingerprint([2, 1]))


class TestFrozenFiles:
    """The checked-in fingerprints are well-formed without re-measuring."""

    def test_all_machines_frozen(self):
        for machine in GOLDEN_MACHINES:
            path = os.path.join(GOLDEN_DIR, f"{machine}.json")
            assert os.path.exists(path), f"missing {path}"

    @pytest.mark.parametrize("machine", sorted(GOLDEN_MACHINES))
    def test_file_shape(self, machine):
        with open(os.path.join(GOLDEN_DIR, f"{machine}.json")) as f:
            payload = json.load(f)
        assert payload["schema"] == GOLDEN_SCHEMA
        assert payload["machine"] == machine
        assert payload["workload"] == golden.GOLDEN_WORKLOAD
        assert set(payload["points"]) == set(GOLDEN_POLICIES)
        for entry in payload["points"].values():
            assert len(entry["fingerprint"]) == 64
            assert len(entry["commit_digest"]) == 64
            assert entry["cycles"] > 0

    def test_point_grid(self):
        assert len(golden_points()) == 25  # the 25-point baseline


class TestRoundTrip:
    """Freeze → check → tamper → detect, on a reduced grid so the whole
    cycle stays tier-1 fast."""

    @pytest.fixture()
    def small_grid(self, monkeypatch, tmp_path):
        monkeypatch.setattr(golden, "GOLDEN_MACHINES",
                            {"baseline": BASELINE})
        monkeypatch.setattr(golden, "GOLDEN_POLICIES", ("OOO", "RAR"))
        directory = str(tmp_path / "golden")
        regen_golden(directory, instructions=400, warmup=300)
        return directory

    def test_regen_then_check_ok(self, small_grid):
        assert check_golden(small_grid) == []

    def test_check_is_stable_across_runs(self, small_grid):
        assert check_golden(small_grid) == []
        assert check_golden(small_grid) == []  # second run, same verdict

    def test_measure_point_deterministic(self):
        a = measure_point("baseline", "RAR", instructions=400, warmup=300)
        b = measure_point("baseline", "RAR", instructions=400, warmup=300)
        assert a == b

    def test_fingerprint_drift_detected(self, small_grid):
        path = os.path.join(small_grid, "baseline.json")
        with open(path) as f:
            payload = json.load(f)
        entry = payload["points"]["RAR"]
        entry["fingerprint"] = "0" * 64
        with open(path, "w") as f:
            json.dump(payload, f)
        problems = check_golden(small_grid)
        assert len(problems) == 1
        assert "baseline/RAR" in problems[0]

    def test_digest_drift_reported(self, small_grid):
        path = os.path.join(small_grid, "baseline.json")
        with open(path) as f:
            payload = json.load(f)
        entry = payload["points"]["OOO"]
        entry["fingerprint"] = "0" * 64
        entry["commit_digest"] = "f" * 64
        with open(path, "w") as f:
            json.dump(payload, f)
        (problem,) = check_golden(small_grid)
        assert "commit digest also drifted" in problem

    def test_missing_file_detected(self, small_grid):
        os.remove(os.path.join(small_grid, "baseline.json"))
        problems = check_golden(small_grid)
        assert any("missing golden file" in p for p in problems)

    def test_stale_schema_detected(self, small_grid):
        path = os.path.join(small_grid, "baseline.json")
        with open(path) as f:
            payload = json.load(f)
        payload["schema"] = GOLDEN_SCHEMA + 1
        with open(path, "w") as f:
            json.dump(payload, f)
        problems = check_golden(small_grid)
        assert any("schema" in p for p in problems)

    def test_check_uses_frozen_run_sizes(self, monkeypatch, tmp_path):
        """A file frozen at non-default sizes still checks clean: the
        check measures at the sizes the file records."""
        monkeypatch.setattr(golden, "GOLDEN_MACHINES",
                            {"baseline": BASELINE})
        monkeypatch.setattr(golden, "GOLDEN_POLICIES", ("OOO",))
        directory = str(tmp_path / "golden")
        regen_golden(directory, instructions=250, warmup=150)
        assert check_golden(directory) == []


@pytest.mark.slow
class TestFullMatrix:
    """The real frozen 25-point matrix, serially and forked."""

    def test_frozen_matrix_conformant_serial(self):
        assert check_golden(GOLDEN_DIR, jobs=1) == []

    def test_frozen_matrix_conformant_parallel(self):
        assert check_golden(GOLDEN_DIR, jobs=4) == []
