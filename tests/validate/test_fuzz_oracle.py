"""Property-based fuzzing of the simulator under full oracle lockstep.

Hypothesis draws random workload characteristics (class mix, dependence
chains, branch behaviour, address-pattern kind) and random finite
traces, and every realisation runs under both the per-cycle invariant
sanitizer and the commit-stream oracle across the paper's mechanism
space. Failures shrink to a minimal (seed, knobs) tuple and reproduce
deterministically (``derandomize=True``).

The suite is in the slow tier (``-m slow``): it runs in the CI
conformance job, not in tier-1.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.enums import UopClass
from repro.common.params import BASELINE
from repro.isa.trace import Trace
from repro.isa.uop import NO_ADDR, StaticUop
from repro.sim import simulate
from repro.workloads.base import WorkloadSpec, make_body
from repro.workloads.patterns import PatternSpec, hot_mix

pytestmark = pytest.mark.slow

POLICIES = ("OOO", "FLUSH", "TR", "PRE", "RAR")

_FUZZ_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


@st.composite
def workload_specs(draw) -> WorkloadSpec:
    """A random synthetic workload over the generator's full knob space."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_slots = draw(st.integers(min_value=8, max_value=96))
    body = make_body(
        random.Random(seed),
        n_slots=n_slots,
        load_frac=draw(st.floats(min_value=0.05, max_value=0.40)),
        store_frac=draw(st.floats(min_value=0.0, max_value=0.15)),
        branch_frac=draw(st.floats(min_value=0.02, max_value=0.25)),
        fp_frac=draw(st.floats(min_value=0.0, max_value=0.20)),
        chain=draw(st.floats(min_value=0.0, max_value=0.9)),
        hard_branch_frac=draw(st.floats(min_value=0.0, max_value=0.5)),
        load_consume=draw(st.floats(min_value=0.0, max_value=0.9)),
    )
    kind = draw(st.sampled_from(("stream", "chase", "random")))
    ws = draw(st.sampled_from((2 * 1024 * 1024, 16 * 1024 * 1024,
                               64 * 1024 * 1024)))
    cold = PatternSpec(kind=kind, working_set=ws)
    hot_fraction = draw(st.floats(min_value=0.0, max_value=0.8))
    pattern = hot_mix(cold, hot_fraction) if hot_fraction >= 0.05 else cold
    return WorkloadSpec(
        name=f"fuzz-{seed}-{n_slots}",
        memory_intensive=True,
        body=body,
        patterns={"main": pattern},
        seed=seed,
    )


@st.composite
def finite_traces(draw) -> Trace:
    """A random finite trace, including degenerate lengths."""
    n = draw(st.integers(min_value=0, max_value=120))
    pc_base = 0x1000
    uops = []
    for i in range(n):
        cls = draw(st.sampled_from((int(UopClass.INT_ADD),
                                    int(UopClass.LOAD),
                                    int(UopClass.STORE),
                                    int(UopClass.BRANCH))))
        pc = pc_base + 4 * i
        addr = NO_ADDR
        taken = False
        target = 0
        if cls in (int(UopClass.LOAD), int(UopClass.STORE)):
            addr = draw(st.integers(min_value=0, max_value=1 << 24)) * 64
        elif cls == int(UopClass.BRANCH):
            taken = draw(st.booleans())
            target = pc_base if taken else pc + 4
        srcs = (i - 1,) if i > 0 and draw(st.booleans()) else ()
        uops.append(StaticUop(idx=i, pc=pc, cls=cls, srcs=srcs, addr=addr,
                              taken=taken, target=target))
    return Trace.from_list(uops, name=f"fuzz-finite-{n}")


@pytest.mark.parametrize("policy", POLICIES)
@_FUZZ_SETTINGS
@given(spec=workload_specs())
def test_random_workloads_pass_oracle_lockstep(policy, spec):
    r = simulate(spec, BASELINE, policy, instructions=5000, warmup=0,
                 oracle=True, validate=True)
    assert r.instructions >= 5000
    assert r.cycles > 0


@pytest.mark.parametrize("policy", POLICIES)
@_FUZZ_SETTINGS
@given(trace=finite_traces())
def test_random_finite_traces_drain_cleanly(policy, trace):
    n = len(trace)
    r = simulate(trace, BASELINE, policy, instructions=10_000, warmup=0,
                 oracle=True, validate=True)
    assert r.instructions == n
