"""Fast-vs-detailed warmup cross-validation harness tests.

Tier-1 exercises the harness mechanics on a tiny grid (report shape,
tolerance bookkeeping, table/JSON rendering); the ``slow`` tier runs
the real ``repro warmval`` grid at its default sizes and asserts the
documented tolerances hold — the conformance claim docs/performance.md
makes.
"""

import json

import pytest

from repro.sim import simulate
from repro.common.params import BASELINE
from repro.validate.warmval import (
    TOLERANCES,
    WARMVAL_POLICIES,
    WARMVAL_WORKLOADS,
    run_warmval,
    warmval_table,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_warmval(["mcf"], ["OOO", "RAR"], instructions=800,
                       warmup=600)


class TestHarness:
    def test_grid_shape(self, tiny_report):
        assert [(p.workload, p.policy) for p in tiny_report.points] == [
            ("mcf", "OOO"), ("mcf", "RAR")]
        for p in tiny_report.points:
            assert set(p.metrics) == set(TOLERANCES)
            assert p.warm_wall_detailed_s > 0
            assert p.warm_wall_fast_s > 0

    def test_detailed_leg_matches_cold_run(self, tiny_report):
        """The reference leg is the exact simulator, not an approximation."""
        cold = simulate("mcf", BASELINE, "OOO", instructions=800,
                        warmup=600)
        got = tiny_report.points[0].metrics["ipc"]["detailed"]
        assert got == round(cold.ipc, 6)

    def test_tolerance_bookkeeping(self, tiny_report):
        for p in tiny_report.points:
            for name, m in p.metrics.items():
                rel, floor = TOLERANCES[name]
                assert m["tol_rel"] == rel and m["tol_floor"] == floor
                bound = max(rel * abs(m["detailed"]), floor)
                assert m["ok"] == (m["abs_delta"] <= bound + 1e-12)
            # problems and per-metric verdicts must agree
            assert p.ok == all(m["ok"] for m in p.metrics.values())

    def test_report_json_round_trips(self, tiny_report):
        payload = json.loads(json.dumps(tiny_report.to_dict()))
        assert payload["schema"] == 1
        assert payload["machine"] == "baseline"
        assert len(payload["points"]) == 2
        assert payload["ok"] == tiny_report.ok
        assert set(payload["tolerances"]) == set(TOLERANCES)
        assert payload["warmup_speedup"] >= 0

    def test_table_renders_every_point(self, tiny_report):
        table = warmval_table(tiny_report)
        assert table.count("mcf") == 2
        assert "dIPC" in table and "status" in table

    def test_max_rel_delta(self, tiny_report):
        deltas = [p.metrics["ipc"]["rel_delta"] for p in tiny_report.points]
        assert tiny_report.max_rel_delta("ipc") == max(deltas)


@pytest.mark.slow
class TestConformance:
    def test_default_grid_within_documented_tolerance(self):
        """The documented warmval claim: full grid, default sizes."""
        report = run_warmval()
        assert report.ok, report.problems
        assert len(report.points) == (len(WARMVAL_WORKLOADS)
                                      * len(WARMVAL_POLICIES))
        # the headline speedup target (docs/performance.md)
        assert report.warmup_speedup >= 5.0
