"""Documentation integrity: files exist and references resolve."""

import os
import re

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name):
    with open(os.path.join(ROOT, name)) as f:
        return f.read()


class TestDocFilesExist:
    def test_required_docs(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "CONTRIBUTING.md", "docs/mechanisms.md",
                     "docs/workloads.md", "docs/metrics.md",
                     "docs/api.md", "docs/tutorial.md",
                     "docs/architecture.md", "docs/observability.md",
                     "docs/memory.md"):
            assert os.path.exists(os.path.join(ROOT, name)), name

    def test_design_confirms_paper_identity(self):
        text = read("DESIGN.md")
        assert "Reliability-Aware Runahead" in text
        assert "HPCA 2022" in text


class TestReadmeReferences:
    def test_bench_files_referenced_exist(self):
        text = read("README.md")
        for match in re.findall(r"`(test_\w+\.py)`", text):
            assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), \
                match

    def test_example_files_referenced_exist(self):
        text = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert os.path.exists(os.path.join(ROOT, "examples", match)), \
                match

    def test_quickstart_code_is_valid_python(self):
        text = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks
        for block in blocks:
            compile(block, "<readme>", "exec")


class TestExperimentsCoverage:
    def test_every_figure_bench_documented(self):
        """EXPERIMENTS.md must reference every figure bench file."""
        text = read("EXPERIMENTS.md")
        bench_dir = os.path.join(ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("test_fig") and name.endswith(".py"):
                assert name in text, f"{name} missing from EXPERIMENTS.md"

    def test_deviations_documented(self):
        text = read("EXPERIMENTS.md")
        assert "deviation" in text.lower()
        assert "D1" in text and "D2" in text


class TestPublicApiDocstrings:
    def test_all_public_modules_have_docstrings(self):
        import importlib
        import pkgutil

        import repro
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            if info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_top_level_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
