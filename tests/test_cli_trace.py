"""CLI surface for trace ingestion (`repro trace import|info|head`),
trace-backed runs, and the calibration command."""

import json
import os

import pytest

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "isa", "fixtures")
CHAMPSIM_FIXTURE = os.path.join(FIXTURES, "champsim_small.txt")
GEM5_FIXTURE = os.path.join(FIXTURES, "gem5_small.txt")


class TestTraceImport:
    def test_import_champsim_fixture(self, tmp_path, capsys):
        out = str(tmp_path / "imported.trace")
        assert main(["trace", "import", CHAMPSIM_FIXTURE,
                     "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "imported" in stdout
        assert f"trace:{out}" in stdout  # tells the user how to run it
        from repro.isa.tracefile import load_trace
        assert len(load_trace(out)) > 1000

    def test_import_gem5_with_explicit_format(self, tmp_path, capsys):
        out = str(tmp_path / "imported.trace.gz")
        assert main(["trace", "import", GEM5_FIXTURE, "-f", "gem5",
                     "--out", out, "--name", "gem5-fixture"]) == 0
        from repro.isa.tracefile import trace_info
        assert trace_info(out, scan=False)["name"] == "gem5-fixture"

    def test_import_requires_out(self, capsys):
        assert main(["trace", "import", CHAMPSIM_FIXTURE]) == 2
        assert "--out" in capsys.readouterr().err

    def test_import_malformed_input_nonzero_exit(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.txt")
        with open(bad, "w") as f:
            f.write("0x400 0 0 - -\n")  # wrong field count
        assert main(["trace", "import", bad, "-f", "champsim",
                     "--out", str(tmp_path / "o.trace")]) == 1
        err = capsys.readouterr().err
        assert "trace import failed" in err
        assert f"{bad}:1" in err  # names the offending line

    def test_import_missing_file_nonzero_exit(self, tmp_path, capsys):
        assert main(["trace", "import", str(tmp_path / "none.txt"),
                     "-f", "champsim",
                     "--out", str(tmp_path / "o.trace")]) == 1
        assert "failed" in capsys.readouterr().err

    def test_imported_trace_runs_end_to_end(self, tmp_path, capsys):
        out = str(tmp_path / "imported.trace")
        assert main(["trace", "import", GEM5_FIXTURE, "--out", out]) == 0
        capsys.readouterr()
        assert main(["run", f"trace:{out}", "RAR",
                     "-n", "5000", "-w", "200"]) == 0
        assert "IPC" in capsys.readouterr().out


class TestTraceInfoHead:
    @pytest.fixture()
    def saved(self, tmp_path):
        from repro.isa.tracefile import save_trace
        from repro.workloads.catalog import get_workload
        path = str(tmp_path / "w.trace")
        save_trace(get_workload("ph-burst-mpki").build_trace(), path,
                   limit=800)
        return path

    def test_info_reports_phases(self, saved, capsys):
        assert main(["trace", "info", saved]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["version"] == 2
        assert info["uops"] == 800
        assert "phase_uops" in info

    def test_info_bad_file_nonzero_exit(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.trace")
        with open(bad, "w") as f:
            f.write("nope\n")
        assert main(["trace", "info", bad]) == 1
        assert "failed" in capsys.readouterr().err

    def test_head_shows_records(self, saved, capsys):
        assert main(["trace", "head", saved, "--limit", "5"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5
        assert "StaticUop" in out[0]


class TestCalibrateCommand:
    def test_check_mode_ok(self, tmp_path, capsys):
        report = str(tmp_path / "cal.json")
        assert main(["calibrate", "ph-burst-mpki", "--check",
                     "-n", "8000", "-w", "15000",
                     "--report", report]) == 0
        out = capsys.readouterr().out
        assert "ph-burst-mpki" in out
        with open(report) as f:
            payload = json.load(f)
        assert payload["mode"] == "check"
        assert payload["results"][0]["converged"] is True

    def test_unknown_workload_exit_2(self, capsys):
        assert main(["calibrate", "not-a-workload", "--check"]) == 2
        assert "calibrate failed" in capsys.readouterr().err
