"""Benchmark catalog integrity."""

import pytest

from repro.workloads.catalog import (
    ALL_WORKLOADS,
    COMPUTE_WORKLOADS,
    MEMORY_WORKLOADS,
    get_workload,
    workload_names,
)


class TestCatalog:
    def test_paper_benchmarks_present(self):
        names = set(workload_names(memory_only=True))
        for expected in ("mcf", "lbm", "libquantum", "fotonik", "gems",
                         "milc", "soplex", "leslie3d", "roms", "astar",
                         "gcc", "omnetpp", "bwaves", "sphinx"):
            assert expected in names

    def test_set_sizes(self):
        assert len(MEMORY_WORKLOADS) == 14
        assert len(COMPUTE_WORKLOADS) == 8
        assert len(ALL_WORKLOADS) == 22

    def test_flags_consistent(self):
        assert all(w.memory_intensive for w in MEMORY_WORKLOADS)
        assert not any(w.memory_intensive for w in COMPUTE_WORKLOADS)

    def test_unique_names(self):
        names = [w.name for w in ALL_WORKLOADS]
        assert len(names) == len(set(names))

    def test_get_workload(self):
        assert get_workload("mcf").name == "mcf"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_descriptions_present(self):
        assert all(w.description for w in ALL_WORKLOADS)

    def test_memory_workloads_have_cold_patterns(self):
        """Every memory-intensive workload reaches a >LLC cold region."""
        llc = 1024 * 1024
        for w in MEMORY_WORKLOADS:
            def max_ws(spec):
                own = spec.working_set * (
                    spec.streams if spec.kind == "stream" else 1)
                subs = [max_ws(s) for _, s in spec.mix_parts]
                return max([own] + subs) if spec.kind == "mix" and subs else own
            assert any(max_ws(p) > llc for p in w.patterns.values()), w.name

    def test_compute_workloads_mostly_cache_resident(self):
        """Compute set: dominant traffic is cache-resident; only a small
        residual fraction reaches cold memory (MPKI < 8, not zero)."""
        llc = 1024 * 1024
        for w in COMPUTE_WORKLOADS:
            for p in w.patterns.values():
                assert p.kind == "mix"
                cold_weight = sum(
                    weight for weight, sub in p.mix_parts
                    if sub.working_set > llc
                )
                assert cold_weight <= 0.03, w.name

    def test_seeds_differ_across_benchmarks(self):
        seeds = {w.seed for w in ALL_WORKLOADS}
        assert len(seeds) == len(ALL_WORKLOADS)

    def test_traces_buildable(self):
        for w in ALL_WORKLOADS:
            t = w.build_trace()
            assert t.get(100) is not None
