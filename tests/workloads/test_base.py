"""Workload body construction and trace generation."""

import random
from collections import Counter

import pytest

from repro.common.enums import UopClass
from repro.workloads.base import BranchSpec, SlotSpec, WorkloadSpec, make_body
from repro.workloads.patterns import PatternSpec


def body(seed=7, **kw):
    return make_body(random.Random(seed), **kw)


def spec_for(b, patterns=None):
    return WorkloadSpec(
        name="t", memory_intensive=True, body=b,
        patterns=patterns or {"main": PatternSpec(kind="hot")},
    )


class TestMakeBody:
    def test_slot_count(self):
        assert len(body(n_slots=64)) == 64

    def test_class_fractions_roughly_respected(self):
        b = body(n_slots=200, load_frac=0.25, store_frac=0.10,
                 branch_frac=0.10)
        counts = Counter(s.cls for s in b)
        assert abs(counts[int(UopClass.LOAD)] - 50) <= 2
        assert abs(counts[int(UopClass.STORE)] - 20) <= 2
        assert abs(counts[int(UopClass.BRANCH)] - 20) <= 2

    def test_ends_with_loop_backedge(self):
        b = body()
        last = b[-1]
        assert last.cls == int(UopClass.BRANCH)
        assert last.branch.kind == "loop"

    def test_mem_slots_have_patterns(self):
        for s in body():
            if UopClass(s.cls).is_mem:
                assert s.pattern is not None

    def test_fp_fraction(self):
        b = body(n_slots=100, fp_frac=0.4)
        n_fp = sum(1 for s in b if UopClass(s.cls).is_fp)
        assert 30 <= n_fp <= 45

    def test_hard_branch_fraction(self):
        b = body(n_slots=200, branch_frac=0.2, hard_branch_frac=0.5)
        kinds = Counter(s.branch.kind for s in b if s.branch)
        assert kinds["data"] >= 15

    def test_divides_are_rare(self):
        b = body(n_slots=400, load_frac=0.1, store_frac=0.05,
                 branch_frac=0.05)
        n_div = sum(1 for s in b if s.cls == int(UopClass.INT_DIV))
        assert n_div <= 0.02 * 400

    def test_deterministic_given_seed(self):
        assert body(seed=3) == body(seed=3)
        assert body(seed=3) != body(seed=4)

    def test_src_slots_exist(self):
        b = body(n_slots=64)
        for s in b:
            for delta, slot in s.srcs:
                assert 0 <= slot < len(b)
                assert delta in (0, 1)


class TestWorkloadSpecValidation:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", memory_intensive=False, body=())

    def test_unknown_pattern_rejected(self):
        b = (SlotSpec(cls=int(UopClass.LOAD), pattern="ghost"),)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", memory_intensive=False, body=b,
                         patterns={})


class TestGeneratedTrace:
    def test_pcs_repeat_per_iteration(self):
        b = body(n_slots=32)
        t = spec_for(b).build_trace()
        for s in range(32):
            assert t.get(s).pc == t.get(s + 32).pc == t.get(s + 64).pc

    def test_loop_branch_outcome_pattern(self):
        b = (SlotSpec(cls=int(UopClass.BRANCH),
                      branch=BranchSpec(kind="loop", period=4)),)
        t = spec_for(b, patterns={}).build_trace()
        outcomes = [t.get(i).taken for i in range(8)]
        assert outcomes == [True, True, True, False] * 2

    def test_data_branch_reads_recent_load(self):
        b = (
            SlotSpec(cls=int(UopClass.LOAD), pattern="main"),
            SlotSpec(cls=int(UopClass.BRANCH),
                     branch=BranchSpec(kind="data", bias=0.5)),
        )
        t = spec_for(b).build_trace()
        br = t.get(3)  # second iteration's branch
        assert 2 in br.srcs  # that iteration's load

    def test_chase_load_depends_on_previous_chase_load(self):
        b = (SlotSpec(cls=int(UopClass.LOAD), pattern="main"),)
        t = spec_for(
            b, patterns={"main": PatternSpec(kind="chase",
                                             working_set=1 << 20)}
        ).build_trace()
        second = t.get(1)
        assert 0 in second.srcs
        third = t.get(2)
        assert 1 in third.srcs

    def test_stream_loads_do_not_depend_on_loads(self):
        b = (SlotSpec(cls=int(UopClass.LOAD), pattern="main"),)
        t = spec_for(
            b, patterns={"main": PatternSpec(kind="stream")}
        ).build_trace()
        assert t.get(5).srcs == ()

    def test_resident_regions_collected(self):
        from repro.workloads.patterns import hot_mix
        spec = spec_for(
            body(),
            patterns={"main": hot_mix(PatternSpec(kind="stream"), 0.9)},
        )
        regions = spec.resident_regions()
        levels = {lvl for lvl, _, _ in regions}
        assert levels == {"l1", "l3"}

    def test_resident_regions_deduped(self):
        from repro.workloads.patterns import hot_mix
        shared = hot_mix(PatternSpec(kind="stream"), 0.9)
        spec = spec_for(body(pattern_weights={"a": 0.5, "b": 0.5}),
                        patterns={"a": shared, "b": shared})
        regions = spec.resident_regions()
        assert len(regions) == len({(b, s) for _, b, s in regions})
