"""Address-pattern engine behaviour."""

import random

import pytest

from repro.workloads.patterns import (
    LINE,
    HotPattern,
    MixPattern,
    PatternSpec,
    PointerChasePattern,
    RandomPattern,
    StreamPattern,
    build_pattern,
    hot_mix,
)


def rng():
    return random.Random(42)


class TestStreamPattern:
    def test_sequential_within_stream(self):
        p = StreamPattern(working_set=4096, streams=1, stride=LINE, base=0x1000)
        r = rng()
        addrs = [p.next_addr(r) for _ in range(4)]
        assert addrs == [0x1000, 0x1040, 0x1080, 0x10C0]

    def test_round_robin_across_streams(self):
        p = StreamPattern(working_set=4096, streams=2, stride=LINE, base=0)
        r = rng()
        a0, a1, a2 = p.next_addr(r), p.next_addr(r), p.next_addr(r)
        assert a1 == 4096  # second stream's region
        assert a2 == a0 + LINE  # first stream advanced

    def test_wraps_within_region(self):
        p = StreamPattern(working_set=128, streams=1, stride=LINE, base=0x100)
        r = rng()
        addrs = [p.next_addr(r) for _ in range(5)]
        assert all(0x100 <= a < 0x180 for a in addrs)
        assert addrs[2] == 0x100  # wrapped

    def test_not_dependent(self):
        assert not StreamPattern(4096).dependent

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            StreamPattern(4096, streams=0)


class TestPointerChase:
    def test_dependent(self):
        assert PointerChasePattern(1 << 20).dependent

    def test_addresses_in_region(self):
        p = PointerChasePattern(1 << 16, base=0x4000_0000)
        r = rng()
        for _ in range(100):
            a = p.next_addr(r)
            assert 0x4000_0000 <= a < 0x4000_0000 + (1 << 16)
            assert a % LINE == 0

    def test_walk_is_irregular(self):
        p = PointerChasePattern(1 << 20)
        r = rng()
        addrs = [p.next_addr(r) for _ in range(50)]
        deltas = {addrs[i + 1] - addrs[i] for i in range(49)}
        assert len(deltas) > 10  # no fixed stride


class TestRandomAndHot:
    def test_random_line_aligned_in_region(self):
        p = RandomPattern(1 << 16, base=0x7000_0000)
        r = rng()
        for _ in range(50):
            a = p.next_addr(r)
            assert 0x7000_0000 <= a < 0x7000_0000 + (1 << 16)
            assert a % LINE == 0

    def test_hot_region_is_tiny(self):
        p = HotPattern()
        r = rng()
        lines = {p.next_addr(r) for _ in range(1000)}
        assert len(lines) <= 16 * 1024 // LINE


class TestMixPattern:
    def test_weights_respected(self):
        a = HotPattern(base=0x0)
        b = HotPattern(base=0x1000_0000)
        m = MixPattern([(0.9, a), (0.1, b)])
        r = rng()
        hits_b = sum(1 for _ in range(2000) if m.next_addr(r) >= 0x1000_0000)
        assert 100 < hits_b < 350

    def test_dependent_follows_selected_part(self):
        chase = PointerChasePattern(1 << 16)
        hot = HotPattern()
        m = MixPattern([(0.5, chase), (0.5, hot)])
        r = rng()
        seen = set()
        for _ in range(100):
            m.next_addr(r)
            seen.add(m.dependent)
        assert seen == {True, False}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MixPattern([])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            MixPattern([(0.0, HotPattern())])


class TestPatternSpec:
    def test_build_all_kinds(self):
        assert isinstance(build_pattern(PatternSpec(kind="stream")),
                          StreamPattern)
        assert isinstance(build_pattern(PatternSpec(kind="chase")),
                          PointerChasePattern)
        assert isinstance(build_pattern(PatternSpec(kind="random")),
                          RandomPattern)
        assert isinstance(build_pattern(PatternSpec(kind="hot")), HotPattern)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_pattern(PatternSpec(kind="zigzag"))

    def test_specs_hashable(self):
        {PatternSpec(kind="stream"): 1}

    def test_hot_mix_structure(self):
        spec = hot_mix(PatternSpec(kind="stream"), 0.8)
        assert spec.kind == "mix"
        weights = [w for w, _ in spec.mix_parts]
        assert abs(sum(weights) - 1.0) < 1e-9
        residents = {s.resident for _, s in spec.mix_parts}
        assert "l1" in residents and "l3" in residents

    def test_hot_mix_validates_fraction(self):
        with pytest.raises(ValueError):
            hot_mix(PatternSpec(kind="stream"), 1.5)

    def test_hot_mix_regions_disjoint(self):
        spec = hot_mix(PatternSpec(kind="stream", base=0x1000_0000,
                                   working_set=32 << 20), 0.8)
        regions = [(s.base, s.base + s.working_set) for _, s in spec.mix_parts]
        regions.sort()
        for (a0, a1), (b0, b1) in zip(regions, regions[1:]):
            assert a1 <= b0, "address regions must not overlap"
