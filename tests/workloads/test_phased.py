"""Phase-structured workloads: PhaseSpec schedules, the phased catalog
set, trace phase annotation, and the auto-tuner calibration contract."""

import pytest

from repro.common.enums import UopClass
from repro.workloads.base import BranchSpec, PhaseSpec, SlotSpec, WorkloadSpec
from repro.workloads.catalog import (
    ALL_WORKLOADS,
    PHASED_BUILDERS,
    PHASED_TARGETS,
    PHASED_WORKLOADS,
    get_workload,
)
from repro.workloads.patterns import PatternSpec


def simple_spec(phases=()):
    patterns = {
        "a": PatternSpec(kind="stream", base=0x100000, working_set=1 << 16),
        "b": PatternSpec(kind="random", base=0x900000, working_set=1 << 20),
    }
    body = (SlotSpec(cls=int(UopClass.LOAD), pattern="a"),
            SlotSpec(cls=int(UopClass.INT_ADD), srcs=((0, 0),)),
            SlotSpec(cls=int(UopClass.BRANCH),
                     branch=BranchSpec(kind="loop")))
    return WorkloadSpec(name="t", memory_intensive=True, body=body,
                        patterns=patterns, phases=tuple(phases))


class TestPhaseSpec:
    def test_duration_must_be_positive(self):
        with pytest.raises(ValueError, match="duration"):
            PhaseSpec(duration=0)

    def test_unknown_override_pattern_rejected(self):
        override = ("zz", PatternSpec(kind="stream", base=0, working_set=4096))
        with pytest.raises(ValueError, match="zz"):
            simple_spec(phases=(PhaseSpec(duration=8,
                                          patterns=(override,)),))

    def test_unphased_spec_has_no_phases(self):
        trace = simple_spec().build_trace(seed=1)
        assert not trace.has_phases()
        assert trace.phase_of(100) == 0


class TestPhasedTrace:
    def test_phase_ids_follow_schedule(self):
        spec = simple_spec(phases=(
            PhaseSpec(duration=4),
            PhaseSpec(duration=2, patterns=(
                ("a", PatternSpec(kind="random", base=0x500000,
                                  working_set=1 << 18)),)),
        ))
        trace = spec.build_trace(seed=1)
        assert trace.has_phases()
        nslots = len(spec.body)
        # iterations 0-3 -> phase 0, 4-5 -> phase 1, cyclically
        for it, want in [(0, 0), (3, 0), (4, 1), (5, 1), (6, 0), (10, 1)]:
            assert trace.phase_of(it * nslots) == want, it

    def test_phase_changes_address_pattern(self):
        ws = 1 << 14
        spec = simple_spec(phases=(
            PhaseSpec(duration=8),
            PhaseSpec(duration=8, patterns=(
                ("a", PatternSpec(kind="stream", base=0x4000000, working_set=ws)),)),
        ))
        trace = spec.build_trace(seed=2)
        nslots = len(spec.body)
        base_load = trace.get(0)             # phase 0, pattern "a"
        override_load = trace.get(8 * nslots)  # phase 1, overridden
        assert base_load.cls == override_load.cls
        assert override_load.addr >= 0x4000000
        assert base_load.addr < 0x4000000

    def test_determinism_same_seed(self):
        spec = simple_spec(phases=(
            PhaseSpec(duration=3),
            PhaseSpec(duration=3, drift=1 << 16, patterns=(
                ("a", PatternSpec(kind="stream", base=0x2000000,
                                  working_set=1 << 15)),)),
        ))
        a, b = spec.build_trace(seed=7), spec.build_trace(seed=7)
        for i in range(200):
            x, y = a.get(i), b.get(i)
            assert (x.pc, x.cls, x.addr, x.taken) == (y.pc, y.cls, y.addr,
                                                      y.taken)

    def test_drift_moves_override_base(self):
        drift = 1 << 20
        spec = simple_spec(phases=(
            PhaseSpec(duration=2, drift=drift, patterns=(
                ("a", PatternSpec(kind="stream", base=0x8000000,
                                  working_set=1 << 12)),)),
        ))
        trace = spec.build_trace(seed=3)
        nslots = len(spec.body)
        first_pass = trace.get(0).addr
        second_pass = trace.get(2 * nslots).addr
        assert 0x8000000 <= first_pass < 0x8000000 + drift
        assert second_pass >= 0x8000000 + drift


class TestPhasedCatalog:
    def test_six_phased_workloads(self):
        assert len(PHASED_WORKLOADS) >= 6
        assert set(PHASED_BUILDERS) == set(PHASED_TARGETS)
        names = {w.name for w in PHASED_WORKLOADS}
        assert names == set(PHASED_BUILDERS)

    def test_resolvable_by_name_but_not_in_paper_sets(self):
        paper_names = {w.name for w in ALL_WORKLOADS}
        for w in PHASED_WORKLOADS:
            assert get_workload(w.name) is w
            assert w.name not in paper_names  # paper sets stay comparable
            assert w.phases, w.name

    def test_phased_traces_annotated(self):
        for w in PHASED_WORKLOADS:
            trace = w.build_trace(seed=0)
            assert trace.has_phases(), w.name
            ids = {trace.phase_of(i * 997) for i in range(200)}
            # Multi-segment schedules must actually switch; single-segment
            # (pure drift) workloads stay in phase 0 by construction.
            if len(w.phases) > 1:
                assert len(ids) >= 2, f"{w.name} never switches phase"
            else:
                assert ids == {0}, w.name


class TestCalibration:
    def test_tuned_parameters_meet_targets(self):
        """Bench-sized regression: one baked workload re-measured with
        its tuned dials stays within the documented tolerance."""
        from repro.workloads.characterize import verify_tuned
        r = verify_tuned("ph-burst-mpki")
        assert r.converged, (r.mpki_measured, r.brmiss_measured)

    def test_calibration_result_report_shape(self):
        from repro.workloads.characterize import verify_tuned
        d = verify_tuned("ph-ramp-ws").to_dict()
        for key in ("name", "params", "mpki", "brmiss", "converged"):
            assert key in d
        for metric in ("mpki", "brmiss"):
            for key in ("target", "measured", "tolerance", "ok"):
                assert key in d[metric]
        assert set(d["params"]) == {"hot_fraction", "data_bias"}

    @pytest.mark.slow
    def test_full_calibration_grid(self):
        """Every phased workload's baked parameters verify on the full
        bench size (the `repro calibrate --check` contract)."""
        from repro.workloads.characterize import calibrate_catalog
        results = calibrate_catalog(check=True)
        bad = [r.name for r in results if not r.converged]
        assert not bad, bad

    @pytest.mark.slow
    def test_autotune_converges_from_scratch(self):
        """The bisection search itself re-finds in-tolerance dials."""
        from repro.workloads.catalog import PHASED_TARGETS
        from repro.workloads.characterize import autotune_workload
        name = "ph-burst-mpki"
        t = PHASED_TARGETS[name]
        r = autotune_workload(PHASED_BUILDERS[name], t["mpki"], t["brmiss"])
        assert r.converged, (r.mpki_measured, r.brmiss_measured)
