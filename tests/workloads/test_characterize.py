"""Workload characterisation API."""

from repro.workloads.characterize import (
    MPKI_THRESHOLD,
    WorkloadProfile,
    characterize,
    characterize_all,
)


def profile(**kw):
    base = dict(name="x", ipc=1.0, mpki=1.0, mlp=1.0,
                mispredicts_per_kinst=1.0, head_blocked_share=0.1)
    base.update(kw)
    return WorkloadProfile(**base)


class TestProfile:
    def test_classification_rule(self):
        assert profile(mpki=MPKI_THRESHOLD + 1).memory_intensive
        assert not profile(mpki=MPKI_THRESHOLD - 1).memory_intensive

    def test_character_labels(self):
        assert profile(mpki=2).character == "compute-bound"
        assert profile(mpki=30, mlp=1.8,
                       mispredicts_per_kinst=45).character == \
            "pointer-chasing/branchy"
        assert profile(mpki=30, mlp=5.0,
                       mispredicts_per_kinst=5).character == "streaming"
        assert profile(mpki=30, mlp=1.8,
                       mispredicts_per_kinst=5).character == \
            "irregular memory-bound"


class TestMeasurement:
    def test_known_characters(self):
        mcf = characterize("mcf", instructions=1500, warmup=4000)
        lib = characterize("libquantum", instructions=1500, warmup=4000)
        x264 = characterize("x264", instructions=1500, warmup=4000)
        assert mcf.memory_intensive
        assert mcf.character == "pointer-chasing/branchy"
        assert lib.memory_intensive
        assert lib.character == "streaming"
        assert not x264.memory_intensive

    def test_characterize_all(self):
        profiles = characterize_all(["x264", "nab"],
                                    instructions=800, warmup=1200)
        assert [p.name for p in profiles] == ["x264", "nab"]
