"""Trace-backed workloads: ``trace:<path>`` resolution, streaming
replay, end-of-stream drain under the oracle, and checkpoint warming."""

import os

import pytest

from repro.common.params import BASELINE
from repro.isa.tracefile import save_trace
from repro.workloads.catalog import get_workload
from repro.workloads.tracewl import (
    TRACE_PREFIX,
    MaterializedTraceWorkload,
    TraceWorkload,
    is_trace_name,
)


@pytest.fixture()
def saved_trace(tmp_path):
    path = str(tmp_path / "x264.trace.gz")
    save_trace(get_workload("x264").build_trace(), path, limit=4000)
    return path


class TestResolution:
    def test_prefix_detection(self):
        assert is_trace_name("trace:/tmp/a.trc")
        assert not is_trace_name("mcf")

    def test_get_workload_resolves_trace_names(self, saved_trace):
        wl = get_workload(f"{TRACE_PREFIX}{saved_trace}")
        assert isinstance(wl, TraceWorkload)
        assert wl.path == saved_trace
        assert wl.memory_intensive
        assert wl.resident_regions() == []

    def test_missing_file_raises_keyerror(self):
        with pytest.raises(KeyError, match="not found"):
            get_workload("trace:/nonexistent/file.trc")

    def test_empty_path_raises_keyerror(self):
        with pytest.raises(KeyError, match="empty path"):
            get_workload("trace:")

    def test_unknown_name_error_mentions_trace_syntax(self):
        with pytest.raises(KeyError, match="trace:<path>"):
            get_workload("wolfenstein3d")

    def test_header_only_construction(self, saved_trace):
        wl = TraceWorkload(saved_trace)
        assert wl.version == 2
        assert wl.trace_name == "x264"

    def test_file_sha256_cached(self, saved_trace):
        wl = TraceWorkload(saved_trace)
        assert wl.file_sha256() == wl.file_sha256()
        assert len(wl.file_sha256()) == 64

    def test_picklable_by_path(self, saved_trace):
        import pickle
        wl = get_workload(f"{TRACE_PREFIX}{saved_trace}")
        clone = pickle.loads(pickle.dumps(wl))
        assert clone.path == wl.path
        assert len(clone.build_trace()) >= 0  # workers re-open the file


class TestSimulation:
    def test_replay_matches_loaded_trace(self, saved_trace):
        """A ``trace:`` workload run is bit-identical to simulating the
        loaded trace directly (no residency hints on either path; the
        generated spec differs only by its preloaded regions)."""
        from repro.isa.tracefile import load_trace
        from repro.sim import simulate
        a = simulate(load_trace(saved_trace), BASELINE, "OOO",
                     instructions=800, warmup=400)
        b = simulate(f"{TRACE_PREFIX}{saved_trace}", BASELINE, "OOO",
                     instructions=800, warmup=400)
        assert a.cycles == b.cycles
        assert a.abc_total == b.abc_total

    def test_eos_drain_under_oracle_and_validate(self, tmp_path):
        """Requesting more instructions than the file holds drains at
        end-of-stream cleanly, with the oracle checking the full
        architectural stream (the PR-5 finite-trace contract)."""
        from repro.sim import simulate
        path = str(tmp_path / "short.trace")
        save_trace(get_workload("mcf").build_trace(), path, limit=1500)
        r = simulate(f"{TRACE_PREFIX}{path}", BASELINE, "RAR",
                     instructions=10_000, warmup=200,
                     validate=True, oracle=True)
        assert 0 < r.instructions <= 1500

    def test_warm_checkpoint_fork(self, saved_trace):
        from repro.checkpoint import warm_checkpoint
        name = f"{TRACE_PREFIX}{saved_trace}"
        cp = warm_checkpoint(name, BASELINE, "OOO", warmup=300)
        a, b = cp.fork(oracle=True), cp.fork(oracle=True)
        a.run(500)
        b.run(500)
        assert a.cycle == b.cycle
        assert a.stats.committed == b.stats.committed

    def test_sweep_accepts_trace_workloads(self, saved_trace):
        from repro.analysis.experiments import ExperimentRunner
        runner = ExperimentRunner(instructions=400, warmup=200)
        name = f"{TRACE_PREFIX}{saved_trace}"
        matrix = runner.run_matrix([name], BASELINE, ["OOO", "RAR"])
        matrix.raise_if_failed()
        assert set(matrix) == {"OOO", "RAR"}
        for policy in matrix:
            assert matrix[policy][name].instructions >= 400


class TestMaterialized:
    def test_fresh_trace_per_build(self):
        src = get_workload("x264").build_trace()
        uops = [src.get(i) for i in range(100)]
        wl = MaterializedTraceWorkload(uops, name="mat")
        t1, t2 = wl.build_trace(), wl.build_trace()
        assert t1 is not t2
        assert len(t1) == len(t2) == 100
        assert t1.get(50).pc == t2.get(50).pc
