"""Extended (non-paper) workload catalog."""

import pytest

from repro.workloads.catalog import (
    ALL_WORKLOADS,
    EXTRA_WORKLOADS,
    get_workload,
)


class TestExtraCatalog:
    def test_not_in_paper_sets(self):
        paper_names = {w.name for w in ALL_WORKLOADS}
        for w in EXTRA_WORKLOADS:
            assert w.name not in paper_names

    def test_lookup_by_name(self):
        assert get_workload("xalancbmk").memory_intensive
        assert not get_workload("blender").memory_intensive

    def test_traces_buildable(self):
        for w in EXTRA_WORKLOADS:
            assert w.build_trace().get(200) is not None

    def test_unique_seeds(self):
        seeds = {w.seed for w in EXTRA_WORKLOADS}
        assert len(seeds) == len(EXTRA_WORKLOADS)

    @pytest.mark.parametrize("name", ["wrf", "gromacs"])
    def test_simulatable(self, name):
        from repro import BASELINE, OOO, simulate
        r = simulate(name, BASELINE, OOO, instructions=800, warmup=1500)
        assert r.instructions >= 800
        if get_workload(name).memory_intensive:
            assert r.mpki > 8
        else:
            assert r.mpki < 8
