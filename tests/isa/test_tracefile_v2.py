"""v2 trace format: metadata block, per-uop phase fields, header name
quoting, the malformed-input suite, and property-based round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.enums import UopClass
from repro.isa.trace import Trace
from repro.isa.tracefile import (
    MAGIC_V1,
    MAGIC_V2,
    TraceFormatError,
    iter_trace,
    load_trace,
    save_trace,
    stream_trace,
    trace_info,
)
from repro.isa.uop import StaticUop


def fields(u):
    return (u.idx, u.pc, u.cls, u.addr, u.taken, u.target, u.srcs)


def make_uops(n=20):
    out = []
    for i in range(n):
        cls = UopClass.LOAD if i % 3 == 0 else UopClass.INT_ADD
        out.append(StaticUop(
            idx=i, pc=0x1000 + 4 * i, cls=int(cls),
            srcs=(i - 1,) if i else (),
            addr=0x8000 + 64 * i if cls == UopClass.LOAD else -1,
            taken=False, target=0))
    return out


class TestV2Format:
    def test_header_and_meta_block(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(make_uops(), path, name="unit", meta={"source": "test"})
        with open(path) as f:
            assert f.readline().rstrip() == MAGIC_V2
            assert f.readline().startswith("#meta {")
        info = trace_info(path, scan=False)
        assert info["version"] == 2
        assert info["name"] == "unit"
        assert info["meta"]["source"] == "test"

    def test_v1_still_written_and_read(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(make_uops(), path, name="legacy", version=1)
        with open(path) as f:
            assert f.readline().startswith(MAGIC_V1)
        loaded = load_trace(path)
        assert loaded.name == "legacy"
        assert len(loaded) == 20

    def test_phase_annotations_round_trip(self, tmp_path):
        path = str(tmp_path / "p.trace")
        trace = Trace.from_list(make_uops(30), name="phased")
        trace.set_phase_table([(0, 0), (10, 1), (20, 0)])
        save_trace(trace, path)
        info = trace_info(path)
        assert info["meta"]["phased"] is True
        assert info["phase_uops"] == {"0": 20, "1": 10}
        loaded = load_trace(path)
        assert loaded.has_phases()
        assert [loaded.phase_of(i) for i in (0, 9, 10, 19, 20, 29)] \
            == [0, 0, 1, 1, 0, 0]

    def test_stream_trace_live_phase_table(self, tmp_path):
        path = str(tmp_path / "p.trace")
        trace = Trace.from_list(make_uops(30), name="phased")
        trace.set_phase_table([(0, 0), (15, 2)])
        save_trace(trace, path)
        streamed = stream_trace(path)
        # Phase annotations materialise with their records.
        assert streamed.get(20) is not None
        assert streamed.phase_of(20) == 2
        assert streamed.phase_of(0) == 0

    def test_unannotated_v2_has_no_phases(self, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(make_uops(), path)
        loaded = load_trace(path)
        assert not loaded.has_phases()
        assert loaded.phase_of(5) == 0


class TestHeaderNameQuoting:
    """Regression: names with spaces used to corrupt the v1 header."""

    @pytest.mark.parametrize("name", [
        "my workload v2", "tabs\tinside", 'quo"ted', "", "plain",
    ])
    @pytest.mark.parametrize("version", [1, 2])
    def test_name_round_trips(self, tmp_path, name, version):
        path = str(tmp_path / "n.trace")
        save_trace(make_uops(5), path, name=name, version=version)
        assert load_trace(path).name == (name or "trace")

    def test_spaced_name_header_is_single_record(self, tmp_path):
        path = str(tmp_path / "n.trace")
        save_trace(make_uops(5), path, name="a b c", version=1)
        with open(path) as f:
            header = f.readline().rstrip()
        assert header == f'{MAGIC_V1} name="a b c"'


def _write(path, text):
    with open(path, "w") as f:
        f.write(text)
    return path


MALFORMED_CASES = {
    "empty-file": ("", 0, "empty file"),
    "bad-magic": ("hello\n", 1, "not a repro trace"),
    "truncated-record": (
        "#repro-trace v1 name=x\n1 2 3\n", 2, "malformed"),
    "v1-extra-fields": (
        "#repro-trace v1 name=x\n0 4096 1 -1 0 0 - ph=1\n", 2,
        "exactly 7 fields"),
    "non-integer-field": (
        "#repro-trace v1 name=x\n0 4096 one -1 0 0 -\n", 2, "non-integer"),
    "negative-idx": (
        "#repro-trace v1 name=x\n-1 4096 1 -1 0 0 -\n", 2, "negative uop idx"),
    "unknown-class": (
        "#repro-trace v1 name=x\n0 4096 99 -1 0 0 -\n", 2, "unknown uop class"),
    "negative-addr": (
        "#repro-trace v1 name=x\n0 4096 1 -7 0 0 -\n", 2, "negative address"),
    "bad-taken": (
        "#repro-trace v1 name=x\n0 4096 1 -1 2 0 -\n", 2, "taken field"),
    "negative-src": (
        "#repro-trace v1 name=x\n0 4096 1 -1 0 0 -3\n", 2, "negative src"),
    "out-of-order-idx": (
        "#repro-trace v1 name=x\n0 4096 1 -1 0 0 -\n5 4096 1 -1 0 0 -\n",
        3, "out of order"),
    "v2-missing-meta": (
        "#repro-trace v2\n0 4096 1 -1 0 0 -\n", 2, "missing '#meta'"),
    "v2-bad-meta-json": (
        "#repro-trace v2\n#meta {not json\n", 2, "unparseable #meta"),
    "v2-meta-not-object": (
        "#repro-trace v2\n#meta [1,2]\n", 2, "not an object"),
    "v2-unknown-uop-field": (
        '#repro-trace v2\n#meta {"name":"x"}\n0 4096 1 -1 0 0 - zz=1\n',
        3, "unknown per-uop field"),
    "v2-non-integer-uop-field": (
        '#repro-trace v2\n#meta {"name":"x"}\n0 4096 1 -1 0 0 - ph=abc\n',
        3, "not an integer"),
}


class TestMalformedInputs:
    """Every malformed input raises a typed error naming the line."""

    @pytest.mark.parametrize("case", sorted(MALFORMED_CASES))
    def test_typed_error_with_line(self, tmp_path, case):
        text, line, match = MALFORMED_CASES[case]
        path = _write(str(tmp_path / f"{case}.trace"), text)
        with pytest.raises(TraceFormatError, match=match) as exc:
            load_trace(path)
        assert exc.value.path == path
        assert exc.value.line == line
        if line:
            assert f"{path}:{line}:" in str(exc.value)

    @pytest.mark.parametrize("case", sorted(MALFORMED_CASES))
    def test_is_a_value_error(self, tmp_path, case):
        text, _, _ = MALFORMED_CASES[case]
        path = _write(str(tmp_path / f"{case}.trace"), text)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_iter_trace_validates_header_before_first_yield(self, tmp_path):
        path = _write(str(tmp_path / "bad.trace"), "nope\n")
        with pytest.raises(TraceFormatError):
            list(iter_trace(path))

    def test_truncated_gzip_payload(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        save_trace(make_uops(), path)
        with open(path, "rb") as f:
            blob = f.read()
        with open(path, "wb") as f:
            f.write(blob[:len(blob) // 2])
        with pytest.raises((TraceFormatError, EOFError, OSError)):
            load_trace(path)


# -------------------------------------------------------- property-based

_CLASSES = sorted(int(c) for c in UopClass)


@st.composite
def uop_streams(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    uops = []
    for i in range(n):
        cls = draw(st.sampled_from(_CLASSES))
        is_mem = cls in (int(UopClass.LOAD), int(UopClass.STORE))
        srcs = tuple(sorted(set(draw(st.lists(
            st.integers(min_value=0, max_value=max(0, i - 1)),
            max_size=3))))) if i else ()
        taken = draw(st.booleans()) if cls == int(UopClass.BRANCH) else False
        uops.append(StaticUop(
            idx=i,
            pc=draw(st.integers(min_value=0, max_value=2**48)),
            cls=cls,
            srcs=srcs,
            addr=draw(st.integers(min_value=0, max_value=2**40))
            if is_mem else -1,
            taken=taken,
            target=draw(st.integers(min_value=0, max_value=2**48))
            if taken else 0))
    return uops


class TestFuzzRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(uops=uop_streams(), version=st.sampled_from([1, 2]),
           gz=st.booleans())
    def test_save_load_bit_equal(self, tmp_path_factory, uops, version, gz):
        tmp = tmp_path_factory.mktemp("fuzz")
        path = str(tmp / ("t.trace.gz" if gz else "t.trace"))
        n = save_trace(uops, path, name="fuzz", version=version)
        assert n == len(uops)
        loaded = load_trace(path)
        assert len(loaded) == len(uops)
        for orig, got in zip(uops, (loaded.get(i) for i in range(n))):
            assert fields(orig) == fields(got)

    @settings(max_examples=10, deadline=None)
    @given(uops=uop_streams())
    def test_resave_is_byte_identical(self, tmp_path_factory, uops):
        """save → load → save produces the identical file."""
        tmp = tmp_path_factory.mktemp("fuzz")
        a, b = str(tmp / "a.trace"), str(tmp / "b.trace")
        save_trace(uops, a, name="fuzz")
        save_trace(load_trace(a), b, name="fuzz")
        with open(a) as fa, open(b) as fb:
            assert fa.read() == fb.read()

    @settings(max_examples=10, deadline=None)
    @given(uops=uop_streams(),
           table=st.lists(st.integers(min_value=0, max_value=7),
                          min_size=1, max_size=5))
    def test_phase_table_round_trips(self, tmp_path_factory, uops, table):
        tmp = tmp_path_factory.mktemp("fuzz")
        path = str(tmp / "p.trace")
        n = len(uops)
        rows, last = [], None
        for k, ph in enumerate(table):
            start = k * max(1, n // len(table))
            if start >= n:
                break
            if ph != last:
                rows.append((start, ph))
                last = ph
        trace = Trace.from_list(uops, name="fuzz")
        trace.set_phase_table(rows)
        save_trace(trace, path)
        loaded = load_trace(path)
        for i in range(n):
            assert loaded.phase_of(i) == trace.phase_of(i)
