"""Trace save/load round-tripping."""

import os

import pytest

from repro.isa.tracefile import load_trace, save_trace
from repro.workloads.catalog import get_workload


def fields(u):
    return (u.idx, u.pc, u.cls, u.addr, u.taken, u.target, u.srcs)


class TestRoundTrip:
    def test_plain(self, tmp_path):
        path = os.path.join(str(tmp_path), "t.trace")
        orig = get_workload("mcf").build_trace()
        n = save_trace(orig, path, limit=500)
        assert n == 500
        loaded = load_trace(path)
        assert loaded.name == "mcf"
        for i in range(500):
            assert fields(loaded.get(i)) == fields(orig.get(i))
        assert loaded.get(500) is None

    def test_gzip(self, tmp_path):
        path = os.path.join(str(tmp_path), "t.trace.gz")
        orig = get_workload("x264").build_trace()
        save_trace(orig, path, limit=300)
        loaded = load_trace(path)
        for i in range(300):
            assert fields(loaded.get(i)) == fields(orig.get(i))

    def test_list_input(self, tmp_path):
        from repro.common.enums import UopClass
        from repro.isa.uop import StaticUop
        uops = [StaticUop(idx=i, pc=4 * i, cls=int(UopClass.INT_ADD))
                for i in range(10)]
        path = os.path.join(str(tmp_path), "l.trace")
        assert save_trace(uops, path, name="handmade") == 10
        loaded = load_trace(path)
        assert loaded.name == "handmade"
        assert len(loaded) == 10

    def test_loaded_trace_simulates(self, tmp_path):
        """A persisted trace replays identically through the core."""
        from repro.common.params import BASELINE
        from repro.core.core import OutOfOrderCore
        from repro.core.runahead import OOO
        path = os.path.join(str(tmp_path), "t.trace")
        spec = get_workload("x264")
        save_trace(spec.build_trace(), path, limit=4000)

        a = OutOfOrderCore(BASELINE, spec.build_trace(), OOO)
        a.run(1500)
        b = OutOfOrderCore(BASELINE, load_trace(path), OOO)
        b.run(1500)
        assert a.cycle == b.cycle
        assert a.ace.total == b.ace.total


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = os.path.join(str(tmp_path), "bogus.txt")
        with open(path, "w") as f:
            f.write("hello\n")
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_malformed_record(self, tmp_path):
        path = os.path.join(str(tmp_path), "bad.trace")
        with open(path, "w") as f:
            f.write("#repro-trace v1 name=x\n")
            f.write("1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = os.path.join(str(tmp_path), "ok.trace")
        with open(path, "w") as f:
            f.write("#repro-trace v1 name=x\n")
            f.write("\n# a comment\n")
            f.write("0 4096 1 -1 0 0 -\n")
        assert len(load_trace(path)) == 1
