"""Trace buffering, rewind determinism and slice walking."""

import pytest

from repro.common.enums import UopClass
from repro.isa.trace import Trace
from repro.isa.uop import StaticUop
from repro.workloads.catalog import get_workload


def linear_uops(n):
    return [
        StaticUop(idx=i, pc=0x1000 + 4 * i, cls=int(UopClass.INT_ADD),
                  srcs=(i - 1,) if i else ())
        for i in range(n)
    ]


class TestTraceBasics:
    def test_from_list_and_get(self):
        t = Trace.from_list(linear_uops(10))
        assert t.get(0).idx == 0
        assert t.get(9).idx == 9
        assert t.get(10) is None

    def test_from_list_validates_order(self):
        uops = linear_uops(3)
        uops[1].idx = 5
        with pytest.raises(ValueError):
            Trace.from_list(uops)

    def test_lazy_materialisation(self):
        t = Trace(iter(linear_uops(100)))
        assert len(t) == 0
        t.get(49)
        assert len(t) == 50
        t.get(5)  # going back costs nothing
        assert len(t) == 50

    def test_out_of_order_generator_rejected(self):
        def bad():
            yield StaticUop(idx=3, pc=0, cls=0)
        with pytest.raises(ValueError):
            Trace(bad()).get(0)

    def test_exhaustion_returns_none(self):
        t = Trace(iter(linear_uops(5)))
        assert t.get(100) is None
        assert len(t) == 5

    def test_rewind_returns_identical_objects(self):
        """Squash recovery relies on get(i) being stable."""
        t = Trace(iter(linear_uops(20)))
        first = t.get(7)
        t.get(19)
        assert t.get(7) is first


class TestSliceProducers:
    def test_linear_chain(self):
        t = Trace.from_list(linear_uops(10))
        slice_ = t.slice_producers(5, max_depth=64)
        assert slice_ == [0, 1, 2, 3, 4]

    def test_depth_bound(self):
        t = Trace.from_list(linear_uops(100))
        assert len(t.slice_producers(99, max_depth=8)) <= 8

    def test_diamond(self):
        uops = [
            StaticUop(idx=0, pc=0, cls=int(UopClass.INT_ADD)),
            StaticUop(idx=1, pc=4, cls=int(UopClass.INT_ADD), srcs=(0,)),
            StaticUop(idx=2, pc=8, cls=int(UopClass.INT_ADD), srcs=(0,)),
            StaticUop(idx=3, pc=12, cls=int(UopClass.LOAD), srcs=(1, 2),
                      addr=0x40),
        ]
        t = Trace.from_list(uops)
        assert t.slice_producers(3) == [0, 1, 2]

    def test_no_producers(self):
        t = Trace.from_list(linear_uops(3))
        assert t.slice_producers(0) == []

    def test_out_of_range(self):
        t = Trace.from_list(linear_uops(3))
        assert t.slice_producers(99) == []


class TestWorkloadTraceDeterminism:
    def test_same_seed_same_trace(self):
        w = get_workload("mcf")
        a, b = w.build_trace(), w.build_trace()
        for i in range(0, 3000, 7):
            ua, ub = a.get(i), b.get(i)
            assert (ua.pc, ua.cls, ua.srcs, ua.addr, ua.taken) == \
                   (ub.pc, ub.cls, ub.srcs, ub.addr, ub.taken)

    def test_different_seed_differs(self):
        w = get_workload("mcf")
        a, b = w.build_trace(seed=1), w.build_trace(seed=2)
        diff = sum(
            1 for i in range(2000)
            if (a.get(i).addr, a.get(i).taken) != (b.get(i).addr, b.get(i).taken)
        )
        assert diff > 0

    def test_producers_precede_consumers(self):
        t = get_workload("soplex").build_trace()
        for i in range(2000):
            u = t.get(i)
            assert all(s < i for s in u.srcs), (i, u.srcs)
