"""StaticUop / DynUop behaviour."""

import pytest

from repro.common.enums import UopClass
from repro.isa.uop import NO_ADDR, DynUop, StaticUop


def make_static(cls=UopClass.INT_ADD, idx=0, **kw):
    return StaticUop(idx=idx, pc=0x400000 + idx * 4, cls=int(cls), **kw)


class TestStaticUop:
    def test_defaults(self):
        u = make_static()
        assert u.addr == NO_ADDR
        assert u.srcs == ()
        assert not u.taken

    def test_class_predicates(self):
        load = make_static(UopClass.LOAD, addr=0x1000)
        assert load.is_load and load.is_mem and not load.is_store
        store = make_static(UopClass.STORE, addr=0x1000)
        assert store.is_store and store.is_mem
        br = make_static(UopClass.BRANCH, taken=True)
        assert br.is_branch and not br.is_mem
        assert make_static(UopClass.FP_MUL).is_fp

    def test_has_dest(self):
        assert make_static(UopClass.LOAD).has_dest
        assert make_static(UopClass.FP_ADD).has_dest
        assert not make_static(UopClass.STORE).has_dest
        assert not make_static(UopClass.BRANCH).has_dest
        assert not make_static(UopClass.NOP).has_dest
        assert not make_static(UopClass.INT_CMP).has_dest

    def test_repr_contains_class(self):
        assert "LOAD" in repr(make_static(UopClass.LOAD))

    def test_slots_prevent_arbitrary_attrs(self):
        u = make_static()
        with pytest.raises(AttributeError):
            u.extra = 1


class TestDynUop:
    def test_initial_state(self):
        d = DynUop(make_static(), seq=1)
        assert d.dispatch_cycle == -1
        assert d.issue_cycle == -1
        assert d.done_cycle == -1
        assert d.commit_cycle == -1
        assert not d.completed and not d.squashed
        assert d.pending == 0
        assert d.consumers == []

    def test_mispredicted_requires_branch(self):
        alu = DynUop(make_static(UopClass.INT_ADD), seq=1)
        alu.predicted_taken = True
        assert not alu.mispredicted

    def test_mispredicted_branch(self):
        br = DynUop(make_static(UopClass.BRANCH, taken=True), seq=1)
        br.predicted_taken = False
        assert br.mispredicted
        br.predicted_taken = True
        assert not br.mispredicted

    def test_wrong_path_branch_never_counts_as_mispredict(self):
        br = DynUop(make_static(UopClass.BRANCH, taken=True), seq=1,
                    wrong_path=True)
        br.predicted_taken = False
        assert not br.mispredicted

    def test_flags_in_repr(self):
        d = DynUop(make_static(), seq=1, wrong_path=True)
        d.squashed = True
        assert "W" in repr(d) and "S" in repr(d)

    def test_same_static_multiple_instances(self):
        st = make_static()
        a, b = DynUop(st, seq=1), DynUop(st, seq=2)
        a.completed = True
        assert not b.completed
        assert a.static is b.static
