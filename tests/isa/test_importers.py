"""External-trace importers: ChampSim and gem5 text → StaticUop streams,
format sniffing, the bundled golden fixtures, and error reporting."""

import os

import pytest

from repro.common.enums import UopClass
from repro.isa.importers import (
    FORMATS,
    ImportError_,
    get_importer,
    import_trace,
    sniff_format,
)
from repro.isa.importers.champsim import import_champsim
from repro.isa.importers.gem5 import import_gem5

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CHAMPSIM_FIXTURE = os.path.join(FIXTURES, "champsim_small.txt")
GEM5_FIXTURE = os.path.join(FIXTURES, "gem5_small.txt")


def classes(uops):
    return [UopClass(u.cls) for u in uops]


class TestChampSim:
    def test_alu_and_compare(self):
        uops = import_champsim(iter([
            "0x400000 0 0 1 2,3 - -",      # writes r1 -> INT_ADD
            "0x400004 0 0 - 1 - -",        # no dest -> INT_CMP
        ]))
        assert classes(uops) == [UopClass.INT_ADD, UopClass.INT_CMP]
        # the compare reads r1, written by uop 0
        assert uops[1].srcs == (0,)

    def test_load_store_and_rmw(self):
        uops = import_champsim(iter([
            "0x400000 0 0 1 - 0x8000 -",        # load
            "0x400004 0 0 - 1 - 0x9000",        # store of r1
            "0x400008 0 0 2 3 0xa000 0xa000",   # RMW: load then store
        ]))
        assert classes(uops) == [UopClass.LOAD, UopClass.STORE,
                                 UopClass.LOAD, UopClass.STORE]
        assert uops[0].addr == 0x8000
        assert uops[1].srcs == (0,)        # store data from the load
        assert uops[3].srcs == (2,)        # RMW store consumes its load

    def test_branch_target_from_next_pc(self):
        uops = import_champsim(iter([
            "0x400000 1 1 - - - -",
            "0x400100 0 0 - - - -",
            "0x400104 1 0 - - - -",
        ]))
        br_taken, _, br_not = uops
        assert br_taken.cls == int(UopClass.BRANCH)
        assert br_taken.taken and br_taken.target == 0x400100
        assert not br_not.taken and br_not.target == 0

    def test_decimal_pc_accepted(self):
        (uop,) = import_champsim(iter(["4096 0 0 - - - -"]))
        assert uop.pc == 4096

    @pytest.mark.parametrize("line,match", [
        ("0x400000 0 0 - -", "expected 7 fields"),
        ("0x400000 2 0 - - - -", "must be 0 or 1"),
        ("0x400000 0 0 a,b - - -", "not an integer"),
        ("0x400000 0 0 - - -5 -", "negative address"),
        ("zz 0 0 - - - -", "not an integer"),
    ])
    def test_malformed_lines(self, line, match):
        with pytest.raises(ImportError_, match=match) as exc:
            import_champsim(iter(["# header comment", line]), "in.txt")
        assert exc.value.path == "in.txt"
        assert exc.value.line == 2


class TestGem5:
    def test_opclass_mapping(self):
        uops = import_gem5(iter([
            "500: system.cpu: 0x4000: ldr x1, [x2] : MemRead : A=0x8000",
            "1000: system.cpu: 0x4004: mul x3, x1, x4 : IntMult : D=0x2",
            "1500: system.cpu: 0x4008: str x3, [x2] : MemWrite : A=0x8040",
            "2000: system.cpu: 0x400c: fadd f1, f2, f3 : FloatAdd : D=0x1",
        ]))
        assert classes(uops) == [UopClass.LOAD, UopClass.INT_MUL,
                                 UopClass.STORE, UopClass.FP_ADD]
        assert uops[0].addr == 0x8000
        # the mul reads x1 (the load); the store reads x3 (the mul)
        assert uops[1].srcs == (0,)
        assert 1 in uops[2].srcs

    def test_mnemonic_fallback(self):
        uops = import_gem5(iter([
            "500: system.cpu: 0x4000: cmp x1, x2 : IntAlu :",
            "1000: system.cpu: 0x4004: b.ne 0x4000 : IntAlu :",
        ]))
        assert classes(uops) == [UopClass.INT_CMP, UopClass.BRANCH]

    def test_branch_direction_inference(self):
        lines = [
            "500: system.cpu: 0x4000: add x1, x1, x2 : IntAlu : D=0x1",
            "1000: system.cpu: 0x4004: b.ne 0x4000 : IntAlu :",
            "1500: system.cpu: 0x4000: add x1, x1, x2 : IntAlu : D=0x2",
            "2000: system.cpu: 0x4004: b.ne 0x4000 : IntAlu :",
            "2500: system.cpu: 0x4008: add x3, x1, x2 : IntAlu : D=0x3",
        ]
        uops = import_gem5(iter(lines))
        first_br, second_br = uops[1], uops[3]
        assert first_br.taken and first_br.target == 0x4000
        assert not second_br.taken  # fell through to 0x4008

    def test_symbolic_pc_suffix_ignored(self):
        (uop,) = import_gem5(iter([
            "500: system.cpu: 0x4000 @main+16: add x1, x2, x3 "
            ": IntAlu : D=0x1"]))
        assert uop.pc == 0x4000

    def test_memory_without_address_rejected(self):
        with pytest.raises(ImportError_, match="no\\s+A=") as exc:
            import_gem5(iter([
                "500: system.cpu: 0x4000: ldr x1, [x2] : MemRead : D=0x1"]),
                "t.out")
        assert exc.value.line == 1

    def test_unrecognised_line_rejected(self):
        with pytest.raises(ImportError_, match="unrecognised"):
            import_gem5(iter(["not a gem5 line"]))


class TestRegistryAndSniffing:
    def test_formats_registry(self):
        assert set(FORMATS) == {"champsim", "gem5"}
        assert get_importer("champsim") is import_champsim
        with pytest.raises(ValueError, match="unknown trace format"):
            get_importer("etrace")

    def test_sniff_fixtures(self):
        assert sniff_format(CHAMPSIM_FIXTURE) == "champsim"
        assert sniff_format(GEM5_FIXTURE) == "gem5"

    def test_sniff_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.txt")
        open(path, "w").close()
        with pytest.raises(ImportError_, match="empty input"):
            sniff_format(path)

    def test_import_trace_auto(self):
        trace = import_trace(CHAMPSIM_FIXTURE)
        assert len(trace) > 0

    def test_import_empty_input_rejected(self, tmp_path):
        path = str(tmp_path / "only_comments.txt")
        with open(path, "w") as f:
            f.write("# nothing here\n")
        with pytest.raises(ImportError_):
            import_trace(path)


class TestBundledFixtures:
    """The golden fixtures import deterministically and round-trip
    through the native format bit-exactly."""

    @pytest.mark.parametrize("fmt,path", [
        ("champsim", CHAMPSIM_FIXTURE), ("gem5", GEM5_FIXTURE),
    ])
    def test_import_is_deterministic(self, fmt, path):
        def run():
            with open(path) as f:
                return get_importer(fmt)(iter(f), path)
        a, b = run(), run()
        assert len(a) == len(b) > 1000
        for x, y in zip(a, b):
            assert (x.idx, x.pc, x.cls, x.addr, x.taken, x.target,
                    x.srcs) == (y.idx, y.pc, y.cls, y.addr, y.taken,
                                y.target, y.srcs)

    @pytest.mark.parametrize("fmt,path", [
        ("champsim", CHAMPSIM_FIXTURE), ("gem5", GEM5_FIXTURE),
    ])
    def test_round_trip_through_native_format(self, fmt, path, tmp_path):
        from repro.isa.tracefile import load_trace, save_trace
        trace = import_trace(path, fmt)
        out = str(tmp_path / "imported.trace")
        n = save_trace(trace, out, limit=10 ** 6)
        loaded = load_trace(out)
        assert len(loaded) == n == len(trace)
        for i in range(n):
            a, b = trace.get(i), loaded.get(i)
            assert (a.idx, a.pc, a.cls, a.addr, a.taken, a.target,
                    a.srcs) == (b.idx, b.pc, b.cls, b.addr, b.taken,
                                b.target, b.srcs)

    def test_fixture_sequential_indices(self):
        for path, fmt in [(CHAMPSIM_FIXTURE, "champsim"),
                          (GEM5_FIXTURE, "gem5")]:
            trace = import_trace(path, fmt)
            for i in range(len(trace)):
                assert trace.get(i).idx == i
                for s in trace.get(i).srcs:
                    assert 0 <= s < i  # producers precede consumers
