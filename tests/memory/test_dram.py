"""DDR3-style DRAM timing model."""

from repro.common.params import DramParams
from repro.memory.dram import Dram


def dram(**kw):
    return Dram(DramParams(**kw))


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        d = dram()
        done = d.access(0x0, 0)
        assert done == d.params.row_miss_latency
        assert d.row_conflicts == 1

    def test_same_row_hits(self):
        d = dram()
        d.access(0x0, 0)
        t1 = d.access(0x40, 1000)  # same 4KB row
        assert t1 - 1000 == d.params.row_hit_latency
        assert d.row_hits == 1

    def test_row_conflict_pays_full_latency(self):
        d = dram()
        d.access(0x0, 0)
        # Same bank, different row: rows interleave across banks, so the
        # next row in the same bank is num_banks rows away.
        other = d.params.row_size * d.params.num_banks
        t = d.access(other, 1000)
        assert t - 1000 == d.params.row_miss_latency

    def test_row_hit_rate(self):
        d = dram()
        d.access(0x0, 0)
        for i in range(1, 10):
            d.access(i * 64, 1000 * i)
        assert d.row_hit_rate == 9 / 10


class TestBankParallelism:
    def test_different_banks_overlap(self):
        d = dram()
        t0 = d.access(0x0, 0)
        t1 = d.access(d.params.row_size, 0)  # next bank
        # Bank-parallel: the second access is delayed only by the bus.
        assert t1 <= t0 + d.params.bus_cycles_per_access

    def test_same_bank_row_hits_pipeline(self):
        """Back-to-back row hits are spaced by tCCD, not full latency."""
        d = dram()
        d.access(0x0, 0)
        base = d.params.row_miss_latency + 10
        t1 = d.access(0x40, base)
        t2 = d.access(0x80, base)
        assert t2 - t1 <= d.params.bus_cycles_per_access

    def test_busy_bank_queues(self):
        d = dram()
        d.access(0x0, 0)
        conflict_addr = d.params.row_size * d.params.num_banks
        t1 = d.access(conflict_addr, 1)  # same bank, conflicting row
        t2 = d.access(conflict_addr + 64, 1)
        assert t2 > t1  # second waits for the precharge/activate


class TestBus:
    def test_bus_serialises_bursts(self):
        d = dram()
        times = sorted(
            d.access(i * d.params.row_size, 0)
            for i in range(8)  # 8 different banks, all arrive at cycle 0
        )
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= d.params.bus_cycles_per_access for g in gaps)

    def test_accesses_counted(self):
        d = dram()
        for i in range(5):
            d.access(i * 64, i)
        assert d.accesses == 5

    def test_bus_pushback_delays_bank_release(self):
        """A burst pushed back by the shared bus keeps its bank busy.

        Saturate the bus across two banks: the second bank's burst is
        delayed behind the first bank's, so the second bank cannot start
        its next (conflicting) row access at the nominal release time —
        its column access only completes when the delayed burst issues.
        """
        d = dram(ranks=1, banks_per_rank=2, bus_cycles_per_access=100)
        p = d.params
        t0 = d.access(0, 0)                  # bank 0, row miss
        assert t0 == p.row_miss_latency
        t1 = d.access(p.row_size, 0)         # bank 1, row miss, bus-pushed
        assert t1 == t0 + p.bus_cycles_per_access
        push = t1 - p.row_miss_latency
        busy = p.t_rp + p.t_rcd + p.bus_cycles_per_access
        bank1_free = busy + push
        # Conflicting row in bank 1, arriving after the nominal release
        # but while the pushed-back burst still occupies the bank: must
        # wait for the real release.
        arrive = busy + 8
        assert arrive < bank1_free
        t2 = d.access(p.row_size * (1 + p.num_banks), arrive)
        assert t2 == bank1_free + p.row_miss_latency
