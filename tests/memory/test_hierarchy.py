"""Composed memory hierarchy: levels, MSHRs, merging, preload, prefetch."""

import pytest

from repro.common.params import BASELINE, PrefetcherParams
from repro.memory.hierarchy import MemoryHierarchy


def hierarchy(machine=BASELINE):
    return MemoryHierarchy(machine)


class TestLevels:
    def test_cold_access_goes_to_dram(self):
        m = hierarchy()
        r = m.access(0x5000_0000, 0)
        assert r.level == "dram"
        assert r.done_cycle > 40

    def test_second_access_hits_l1(self):
        m = hierarchy()
        first = m.access(0x5000_0000, 0)
        r = m.access(0x5000_0000, first.done_cycle + 1)
        assert r.level == "l1"
        assert r.done_cycle == first.done_cycle + 1 + BASELINE.l1d.latency

    def test_l1_eviction_leaves_l2(self):
        m = hierarchy()
        base = 0x5000_0000
        done = m.access(base, 0).done_cycle
        # Fill enough same-set lines to evict base from L1 (8-way).
        l1_span = BASELINE.l1d.num_sets * 64
        t = done + 1
        for i in range(1, 12):
            t = max(t, m.access(base + i * l1_span, t).done_cycle) + 1
        r = m.access(base, t + 1)
        assert r.level in ("l2", "l3")

    def test_probe_level_no_side_effects(self):
        m = hierarchy()
        assert m.probe_level(0x5000_0000) == "dram"
        done = m.access(0x5000_0000, 0).done_cycle
        assert m.probe_level(0x5000_0000) in ("l1", "dram")
        assert m.demand_accesses == 1


class TestMshr:
    def test_limit_enforced(self):
        m = hierarchy()
        rejected = 0
        for i in range(25):
            if m.access(0x5000_0000 + i * 64, 0) is None:
                rejected += 1
        assert rejected == 25 - BASELINE.l1d.mshrs
        assert m.rejected_mshr_full == rejected

    def test_mshrs_free_after_completion(self):
        m = hierarchy()
        results = [m.access(0x5000_0000 + i * 64, 0) for i in range(20)]
        last_done = max(r.done_cycle for r in results)
        assert m.access(0x6000_0000, last_done + 1) is not None

    def test_merge_does_not_consume_mshr(self):
        m = hierarchy()
        m.access(0x5000_0000, 0)
        in_use = m.mshr_in_use(1)
        r = m.access(0x5000_0010, 1)  # same line: merge
        assert r.merged
        assert m.mshr_in_use(1) == in_use

    def test_merge_returns_original_timing(self):
        m = hierarchy()
        first = m.access(0x5000_0000, 0)
        merged = m.access(0x5000_0000, 5)
        assert merged.merged
        assert merged.done_cycle == first.done_cycle
        assert merged.level == "dram"


class TestPreload:
    def test_l3_preload(self):
        m = hierarchy()
        m.preload(0x0800_0000, 64 * 1024, "l3")
        r = m.access(0x0800_0000, 0)
        assert r.level == "l3"

    def test_l1_preload(self):
        m = hierarchy()
        m.preload(0x0001_0000, 16 * 1024, "l1")
        r = m.access(0x0001_0000, 0)
        assert r.level == "l1"

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            hierarchy().preload(0, 64, "l2")


class TestPrefetcher:
    def _machine(self, levels):
        return BASELINE.with_prefetcher(
            PrefetcherParams(levels=levels), name="pf")

    def test_l3_prefetch_after_stride_training(self):
        m = hierarchy(self._machine(("l3",)))
        t = 0
        for i in range(6):
            r = m.access(0x5000_0000 + i * 64, t, pc=0x400)
            t = r.done_cycle + 1
        assert m.prefetches_issued > 0

    def test_prefetched_line_serviced_early(self):
        m = hierarchy(self._machine(("l1", "l2", "l3")))
        t = 0
        for i in range(8):
            r = m.access(0x5000_0000 + i * 64, t, pc=0x400)
            t = r.done_cycle + 1
        # Far-ahead line should now be covered (outstanding or resident).
        probe = m.probe_level(0x5000_0000 + 11 * 64)
        cold = m.probe_level(0x6000_0000)
        assert cold == "dram"
        assert m.prefetches_issued > 0

    def test_no_prefetcher_attribute_without_config(self):
        assert hierarchy().prefetcher is None

    def test_l3_promotion_recorded_as_l3_not_dram(self):
        """A prefetch that promotes an L3-resident line must record the
        fill as level "l3": a demand access merging with it is an L3
        hit, not an LLC miss — and no DRAM request is made."""
        m = hierarchy(self._machine(("l1", "l2", "l3")))
        m.preload(0x5000_0000, 64 * 1024, "l3")
        t = 0
        seen = set()
        for i in range(8):
            r = m.access(0x5000_0000 + i * 64, t, pc=0x400)
            seen.update(lvl for _, lvl in m._outstanding.values())
            t = r.done_cycle + 1
        assert m.prefetches_issued > 0
        assert m.dram.prefetch_requests == 0
        assert seen and "dram" not in seen

    def test_prefetch_queue_size_comes_from_params(self):
        deep = hierarchy(BASELINE.with_prefetcher(
            PrefetcherParams(levels=("l3",)), name="pf"))
        shallow = hierarchy(BASELINE.with_prefetcher(
            PrefetcherParams(levels=("l3",), queue=1), name="pf1"))
        assert deep._pf_queue == PrefetcherParams.queue == 16
        assert shallow._pf_queue == 1

    def test_shallow_queue_throttles_prefetches(self):
        def issued(queue):
            m = hierarchy(BASELINE.with_prefetcher(
                PrefetcherParams(levels=("l3",), queue=queue), name="pf"))
            # Many streams training at once: every stream wants a slot.
            for i in range(6):
                for s in range(8):
                    m.access(0x5000_0000 + s * 0x10_0000 + i * 64,
                             i, pc=0x400 + s * 4)
            return m.prefetches_issued

        assert issued(1) < issued(16)
