"""Microbenchmark validation: every preset matches its analytic curves."""

import pytest

from repro.memory.dram import PRESET_NAMES, dram_preset
from repro.workloads.microbench import (
    measure_stream_bandwidth,
    measure_unloaded_latency,
    memval_table,
    validate_all,
    validate_preset,
)
from repro.memory.dram.protocol import DRAM_PRESETS


class TestUnloadedLatency:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_within_one_cycle_of_spec(self, name):
        p = dram_preset(name, refresh=False)
        hit, miss = measure_unloaded_latency(p)
        assert abs(hit - p.row_hit_latency) <= 1
        assert abs(miss - p.row_miss_latency) <= 1


class TestStreamBandwidth:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_reaches_95_percent_of_ceiling(self, name):
        p = dram_preset(name, refresh=False)
        bw, _ = measure_stream_bandwidth(p)
        assert bw >= 0.95 * p.peak_bandwidth
        assert bw <= p.peak_bandwidth + 1e-9  # never above the data bus

    def test_measured_ordering(self):
        bw = {}
        for name in ("ddr3-1600", "ddr4-3200", "hbm2"):
            bw[name], _ = measure_stream_bandwidth(
                dram_preset(name, refresh=False))
        assert bw["hbm2"] > bw["ddr4-3200"] > bw["ddr3-1600"]


class TestValidate:
    @pytest.mark.parametrize("scheduler", ["fcfs", "frfcfs"])
    def test_all_presets_pass(self, scheduler):
        results = validate_all(scheduler=scheduler)
        assert len(results) == len(PRESET_NAMES)
        for r in results:
            assert r.ok, f"{r.preset}/{scheduler}: {r.problems}"

    def test_refresh_numbers_populated(self):
        r = validate_preset(DRAM_PRESETS["ddr4-3200"])
        assert r.refresh_bw is not None
        assert r.refresh_stalls > 0
        assert r.refresh_bw <= r.measured_bw

    def test_no_refresh_preset_skips_refresh_check(self):
        r = validate_preset(DRAM_PRESETS["ddr3-1600"])
        assert r.refresh_bw is None and r.refresh_stalls == 0

    def test_subset_validation(self):
        results = validate_all(presets=["hbm2"])
        assert [r.preset for r in results] == ["hbm2"]

    def test_table_renders_all_rows(self):
        text = memval_table(validate_all())
        for name in PRESET_NAMES:
            assert name in text
        assert "FAIL" not in text
