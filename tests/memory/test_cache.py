"""Set-associative cache model."""

import pytest

from repro.common.params import CacheParams
from repro.memory.cache import Cache


def cache(size=4096, assoc=4, line=64):
    return Cache(CacheParams(size=size, assoc=assoc, latency=1,
                             line_size=line), "t")


class TestLookupInsert:
    def test_cold_miss_then_hit(self):
        c = cache()
        assert not c.lookup(0x1000)
        c.insert(0x1000)
        assert c.lookup(0x1000)

    def test_same_line_aliases(self):
        c = cache()
        c.insert(0x1000)
        assert c.lookup(0x1004)
        assert c.lookup(0x103F)
        assert not c.lookup(0x1040)

    def test_contains_no_side_effects(self):
        c = cache()
        c.insert(0x1000)
        h, m = c.hits, c.misses
        assert c.contains(0x1000)
        assert not c.contains(0x2000)
        assert (c.hits, c.misses) == (h, m)

    def test_stats(self):
        c = cache()
        c.lookup(0x0)
        c.insert(0x0)
        c.lookup(0x0)
        assert c.misses == 1 and c.hits == 1
        assert c.accesses == 2
        assert c.miss_rate == 0.5
        c.reset_stats()
        assert c.accesses == 0


class TestLru:
    def test_eviction_order(self):
        c = cache(size=256, assoc=4, line=64)  # 1 set, 4 ways
        for i in range(4):
            c.insert(i * 64 * 1)  # all map to set 0? line i -> set i%1=0
        # Touch line 0 to promote it, then insert a 5th line.
        c.lookup(0)
        c.insert(4 * 64)
        assert c.contains(0)          # promoted, survives
        assert not c.contains(64)     # LRU victim
        assert c.evictions == 1

    def test_victim_address_reconstruction(self):
        c = cache(size=256, assoc=1, line=64)  # 1 set, direct... 4 sets
        # size 256, assoc 1, line 64 -> 4 sets
        c.insert(0x0)
        victim = c.insert(0x0 + 4 * 64)  # same set 0
        assert victim == (0x0, False)

    def test_reinsert_not_eviction(self):
        c = cache(size=256, assoc=4, line=64)
        c.insert(0x0)
        assert c.insert(0x0) is None
        assert c.evictions == 0


class TestDirty:
    def test_dirty_writeback_counted(self):
        c = cache(size=256, assoc=1, line=64)
        c.insert(0x0, dirty=True)
        c.insert(4 * 64)  # evicts set-0 line
        assert c.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = cache(size=256, assoc=1, line=64)
        c.insert(0x0)
        c.insert(4 * 64)
        assert c.writebacks == 0

    def test_mark_dirty_later(self):
        c = cache(size=256, assoc=1, line=64)
        c.insert(0x0)
        c.mark_dirty(0x0)
        c.insert(4 * 64)
        assert c.writebacks == 1


class TestInvalidate:
    def test_invalidate(self):
        c = cache()
        c.insert(0x1000)
        assert c.invalidate(0x1000)
        assert not c.contains(0x1000)
        assert not c.invalidate(0x1000)


class TestValidation:
    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheParams(size=3 * 64, assoc=1, latency=1), "bad")

    def test_zero_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheParams(size=64, assoc=4, latency=1), "bad")


class TestIndexReconstruct:
    """_reconstruct must invert _index for every geometry (the victim
    address handed back to the hierarchy is rebuilt from (set, tag))."""

    GEOMETRIES = (
        (4096, 4, 64),    # typical set-associative
        (4096, 1, 64),    # direct-mapped (single way)
        (256, 4, 64),     # num_sets == 1 (fully associative, tag shift 0)
        (64, 1, 64),      # one set, one way
        (32768, 8, 64),   # L1-like
        (2048, 2, 128),   # wider lines
    )

    def test_reconstruct_inverts_index(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        geometries = self.GEOMETRIES

        @settings(max_examples=300, deadline=None)
        @given(addr=st.integers(min_value=0, max_value=(1 << 44) - 1),
               geo=st.sampled_from(geometries))
        def check(addr, geo):
            size, assoc, line = geo
            c = cache(size=size, assoc=assoc, line=line)
            set_idx, tag = c._index(addr)
            assert 0 <= set_idx < c.params.num_sets
            recon = c._reconstruct(set_idx, tag)
            assert recon == addr & ~(line - 1)  # line-aligned round trip
            assert c._index(recon) == (set_idx, tag)

        check()

    def test_single_set_uses_whole_line_as_tag(self):
        c = cache(size=256, assoc=4, line=64)  # num_sets == 1
        assert c.params.num_sets == 1
        set_idx, tag = c._index(0xDEADBEEF00)
        assert set_idx == 0
        assert tag == 0xDEADBEEF00 >> 6

    def test_victim_reconstruction_direct_mapped(self):
        c = cache(size=128, assoc=1, line=64)  # 2 sets, 1 way
        c.insert(0x0)
        victim = c.insert(0x80)  # same set (set 0), evicts 0x0
        assert victim == (0x0, False)
