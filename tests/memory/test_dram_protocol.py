"""Protocol presets, address mapping, FR-FCFS, refresh, and checkpointing."""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.common.params import BASELINE, DramParams
from repro.checkpoint import simulate_from, warm_checkpoint
from repro.memory.dram import (
    DRAM_PRESETS,
    AddressMapping,
    DramController,
    FrfcfsScheduler,
    MAPPING_POLICIES,
    PRESET_NAMES,
    dram_preset,
    make_scheduler,
)

# ------------------------------------------------------------------ presets


class TestPresets:
    def test_default_preset_is_exact_legacy_params(self):
        """ddr3-1600 must resolve to DramParams() bit-for-bit — this is
        the parameter-level face of the golden bit-identity contract."""
        assert dram_preset("ddr3-1600") == DramParams()

    def test_all_presets_resolve(self):
        for name in PRESET_NAMES:
            p = dram_preset(name)
            assert p.protocol == name
            assert p.row_hit_latency > p.controller_latency
            assert p.row_miss_latency > p.row_hit_latency
            assert p.peak_bandwidth > 0

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            dram_preset("ddr5-9999")

    def test_core_cycle_conversion(self):
        proto = DRAM_PRESETS["ddr4-3200"]
        # 22 memory cycles at 1600 MHz on a 2660 MHz core.
        assert proto.core_cycles(proto.t_cl) == (22 * 2660) // 1600

    def test_refresh_mask(self):
        live = dram_preset("ddr4-3200")
        masked = dram_preset("ddr4-3200", refresh=False)
        assert live.t_refi > 0 and live.t_rfc > 0
        assert masked.t_refi == 0 and masked.t_rfc == 0
        assert masked.row_hit_latency == live.row_hit_latency

    def test_bandwidth_ordering_is_structural(self):
        bw = {n: dram_preset(n).peak_bandwidth for n in PRESET_NAMES}
        assert bw["hbm2"] > bw["ddr4-3200"] > bw["ddr3-1600"]

    def test_hbm2_is_wide_not_fast(self):
        """HBM's shape: many channels, modest per-channel bandwidth."""
        hbm = dram_preset("hbm2")
        ddr4 = dram_preset("ddr4-3200")
        assert hbm.channels > ddr4.channels
        per_chan = hbm.peak_bandwidth / hbm.channels
        assert per_chan < ddr4.peak_bandwidth / ddr4.channels

    def test_scheduler_and_mapping_pass_through(self):
        p = dram_preset("hbm2", scheduler="frfcfs", mapping="xor",
                        frfcfs_cap=64)
        assert (p.scheduler, p.mapping, p.frfcfs_cap) == ("frfcfs", "xor", 64)


# ------------------------------------------------------------------ mapping


@st.composite
def geometry(draw):
    return DramParams(
        channels=draw(st.sampled_from([1, 2, 4, 8])),
        ranks=draw(st.sampled_from([1, 2, 4])),
        banks_per_rank=draw(st.sampled_from([1, 4, 8, 16])),
        row_size=draw(st.sampled_from([1024, 2048, 4096])),
        mapping=draw(st.sampled_from(MAPPING_POLICIES)),
    )


class TestMappingProperties:
    @given(geometry(), st.integers(0, (1 << 40) - 1))
    @settings(max_examples=200, deadline=None)
    def test_unmap_inverts_map(self, params, addr):
        m = AddressMapping(params)
        assert m.unmap(*m.map(addr)) == addr - (addr % params.row_size)

    @given(geometry(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_map_inverts_unmap(self, params, data):
        m = AddressMapping(params)
        c = data.draw(st.integers(0, params.channels - 1))
        b = data.draw(st.integers(0, params.num_banks - 1))
        r = data.draw(st.integers(0, (1 << 16) - 1))
        assert m.map(m.unmap(c, b, r)) == (c, b, r)

    @given(geometry(), st.integers(0, (1 << 40) - 1))
    @settings(max_examples=100, deadline=None)
    def test_coordinates_in_range(self, params, addr):
        c, b, r = AddressMapping(params).map(addr)
        assert 0 <= c < params.channels
        assert 0 <= b < params.num_banks
        assert r >= 0

    def test_xor_spreads_row_strided_stream(self):
        """A stream striding by one full bank sweep camps on bank 0 under
        row-interleaving; xor spreads it across all banks."""
        base = DramParams(channels=1, ranks=1, banks_per_rank=8)
        stride = base.row_size * base.num_banks
        addrs = [i * stride for i in range(64)]
        row_banks = {AddressMapping(base).map(a)[1] for a in addrs}
        xor_banks = {
            AddressMapping(DramParams(
                channels=1, ranks=1, banks_per_rank=8,
                mapping="xor")).map(a)[1]
            for a in addrs}
        assert row_banks == {0}
        assert len(xor_banks) == base.num_banks

    def test_non_power_of_two_geometry_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping(DramParams(channels=3))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping(DramParams(mapping="hash"))


# --------------------------------------------------------------- saturation


class TestBankConflictSaturation:
    def test_conflicting_rows_serialise_through_precharge(self):
        """All-conflict traffic to one bank piles up: each request waits
        the full precharge+activate of every request ahead of it."""
        d = DramController(DramParams())
        p = d.params
        stride = p.row_size * p.num_banks  # same bank, new row each time
        times = [d.access(i * stride, 0) for i in range(16)]
        busy = p.t_rp + p.t_rcd + p.bus_cycles_per_access
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= busy for g in gaps)
        assert d.row_conflicts == 16 and d.row_hits == 0

    def test_queue_depth_tracks_pileup(self):
        d = DramController(DramParams())
        stride = d.params.row_size * d.params.num_banks
        times = [d.access(i * stride, 0) for i in range(16)]
        assert d.queue_depth(0) == 16
        assert d.queue_depth(max(times)) == 0
        assert d.busy_banks(times[0]) >= 1

    def test_frfcfs_sustains_higher_bandwidth_under_refresh(self):
        """FR-FCFS's signature at saturation: scheduling around refresh
        windows (gap-fill + backfill) sustains more bandwidth than FCFS,
        which serialises behind every window it collides with."""
        from repro.workloads.microbench import measure_stream_bandwidth

        bw = {}
        for sched in ("fcfs", "frfcfs"):
            bw[sched], ctrl = measure_stream_bandwidth(
                dram_preset("ddr4-3200", scheduler=sched))
            assert ctrl.refresh_stall_cycles > 0
        assert bw["frfcfs"] > bw["fcfs"]


# ------------------------------------------------------------------ refresh


def _refresh_params(**kw):
    kw.setdefault("channels", 1)
    kw.setdefault("ranks", 1)
    kw.setdefault("banks_per_rank", 4)
    kw.setdefault("t_refi", 1000)
    kw.setdefault("t_rfc", 100)
    return DramParams(**kw)


class TestRefreshCollisions:
    def test_request_inside_window_waits_it_out(self):
        d = DramController(_refresh_params())
        # Bank 0's first window is [0, 100): a request arriving mid-window
        # stalls to the window end.
        done = d.access(0, 50)
        assert done == 100 + d.params.row_miss_latency
        assert d.refresh_stall_cycles == 50

    def test_window_while_idle_closes_row_buffer(self):
        d = DramController(_refresh_params())
        d.access(0, 150)            # open row 0 after the first window
        hit = d.access(64, 300)     # still open: row hit
        assert hit - 300 == d.params.row_hit_latency
        # The cycle-1000 window passes while the bank is idle; the row
        # buffer is closed when the next request arrives.
        miss = d.access(128, 1500)
        assert miss - 1500 == d.params.row_miss_latency

    def test_window_colliding_with_inflight_activate_is_absorbed(self):
        """FCFS defers a window that lands on a busy bank: a request whose
        activate is already in flight when the window opens completes at
        its nominal time (the controller postpones refresh under load)."""
        d = DramController(_refresh_params())
        done = d.access(0, 990)  # activate spans the cycle-1000 window
        assert done == 990 + d.params.row_miss_latency
        assert d.refresh_stall_cycles == 0

    def test_frfcfs_materialises_windows_and_stalls(self):
        d = DramController(_refresh_params(scheduler="frfcfs"))
        done = d.access(0, 10)  # arrives inside bank 0's [0, 100) window
        assert done == 100 + d.params.row_miss_latency
        assert d.refresh_stall_cycles == 90
        ops = d.scheduler._ops[0]
        assert ops[0][2] == FrfcfsScheduler._REFRESH_ROW

    def test_frfcfs_backfills_gap_before_booked_window(self):
        """A request that fits entirely before a booked future window is
        serviced in the idle gap instead of queueing behind the window."""
        d = DramController(_refresh_params(scheduler="frfcfs"))
        d.access(0, 150)                      # past window 0; row 0 open
        done = d.access(64, 800)              # hit, fits before cycle 1000
        assert done - 800 == d.params.row_hit_latency

    def test_refresh_degrades_saturated_bandwidth(self):
        def makespan(t_refi, t_rfc):
            d = DramController(_refresh_params(t_refi=t_refi, t_rfc=t_rfc))
            return max(d.access(i * 64, 0) for i in range(512))

        assert makespan(1000, 100) > makespan(0, 0)


# ------------------------------------------------------- FR-FCFS scheduling


class TestFrfcfs:
    def _gap_controller(self, **preset_kw):
        """Bank 0 with row 0 open, a far-future booked op, and an idle
        gap in between."""
        d = DramController(dram_preset("ddr3-1600", scheduler="frfcfs",
                                       **preset_kw))
        d.access(0, 0)          # row 0: [0, busy)
        d.access(64, 20000)     # row 0 again, far later: leaves a gap
        return d

    def test_row_hit_fills_idle_gap(self):
        d = self._gap_controller()
        done = d.access(128, 200)  # row 0 hit, lands in the gap
        assert done - 200 == d.params.row_hit_latency
        assert d.scheduler.bypasses == 1

    def _starved_controller(self, cap):
        """Bank 0 with row 0 open, an idle gap, and a queued request
        (row 9, arrived at cycle 300) that a far-future burst has pushed
        behind the gap — by the time a hit shows up, that request has
        been waiting far longer than any reasonable cap."""
        d = DramController(dram_preset("ddr3-1600", scheduler="frfcfs",
                                       frfcfs_cap=cap))
        stride = d.params.row_size * d.params.num_banks
        d.access(0, 0)                          # row 0: opens the gap
        for r in range(1, 9):                   # backlog around cycle 10000
            d.access(r * stride, 10000)
        d.access(9 * stride, 300)               # old request, queued last
        return d

    def test_starvation_cap_denies_stale_bypass(self):
        """A hit must not overtake a request that has already waited
        more than frfcfs_cap cycles."""
        d = self._starved_controller(cap=512)
        done = d.access(64, 900)  # row-0 hit; the row-9 op is 600 old
        assert d.scheduler.bypass_denied_age == 1
        assert d.scheduler.bypasses == 0
        # Serviced in order, behind the whole backlog — not in the gap.
        assert done - 900 > d.params.row_miss_latency

    def test_large_cap_allows_same_bypass(self):
        d = self._starved_controller(cap=10**9)
        done = d.access(64, 900)
        assert d.scheduler.bypasses == 1
        assert d.scheduler.bypass_denied_age == 0
        assert done - 900 == d.params.row_hit_latency

    def test_matches_fcfs_on_serial_traffic(self):
        """With one request in flight at a time there is nothing to
        reorder: both schedulers give identical timings."""
        a = DramController(dram_preset("ddr3-1600"))
        b = DramController(dram_preset("ddr3-1600", scheduler="frfcfs"))
        t_a = t_b = 0
        for i in range(64):
            addr = (i * 7919 * 64) & ((1 << 30) - 1)
            t_a = a.access(addr, t_a)
            t_b = b.access(addr, t_b)
            assert t_a == t_b

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler(DramParams(scheduler="round-robin"))


# --------------------------------------------------------------- checkpoint


class TestCheckpointing:
    def _drive(self, ctrl, n, seed_off=0):
        out = []
        for i in range(n):
            addr = ((i + seed_off) * 4651 * 64) & ((1 << 28) - 1)
            out.append(ctrl.access(addr, 40 * i, kind="demand"))
        return out

    @pytest.mark.parametrize("scheduler", ["fcfs", "frfcfs"])
    def test_forked_controller_replays_identically(self, scheduler):
        """Deep-copy a controller mid-burst; the fork and the original
        must time every subsequent access identically."""
        d = DramController(dram_preset("ddr4-3200", scheduler=scheduler))
        self._drive(d, 100)
        fork = copy.deepcopy(d)
        assert self._drive(d, 100, seed_off=100) == \
            self._drive(fork, 100, seed_off=100)
        assert (d.accesses, d.row_hits, d.refresh_stall_cycles) == \
            (fork.accesses, fork.row_hits, fork.refresh_stall_cycles)

    def test_fork_is_isolated(self):
        d = DramController(dram_preset("ddr4-3200", scheduler="frfcfs"))
        self._drive(d, 50)
        fork = copy.deepcopy(d)
        self._drive(d, 50, seed_off=50)
        assert fork.accesses == 50  # untouched by the original's traffic

    def test_sim_checkpoint_bit_identity_nondefault_protocol(self):
        """The full checkpoint path with a live FR-FCFS + refresh
        controller: fork from a warm checkpoint must equal a cold run."""
        machine = BASELINE.with_dram(
            dram_preset("ddr4-3200", scheduler="frfcfs"),
            name="ck-ddr4-frfcfs")
        from repro.sim import simulate
        cold = simulate("mcf", machine, "RAR", instructions=800,
                        warmup=400, seed=11)
        ck = warm_checkpoint("mcf", machine, "RAR", warmup=400, seed=11)
        assert simulate_from(ck, instructions=800) == cold
