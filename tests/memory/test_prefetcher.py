"""Region-based stream prefetcher training."""

from repro.common.params import PrefetcherParams
from repro.memory.prefetcher import StridePrefetcher


def pf(**kw):
    return StridePrefetcher(PrefetcherParams(**kw))


class TestTraining:
    def test_needs_confidence(self):
        p = pf()
        assert p.train(0x400, 0x1000) == []     # allocate stream
        assert p.train(0x400, 0x1040) == []     # first stride observation
        out = p.train(0x400, 0x1080)            # stride confirmed
        out = out or p.train(0x400, 0x10C0)
        assert out, "a confirmed stride must prefetch"

    def test_prefetch_addresses_ahead(self):
        p = pf(degree=2, distance=4)
        for i in range(4):
            p.train(0x400, 0x1000 + i * 64)
        out = p.train(0x400, 0x1000 + 4 * 64)
        base = 0x1000 + 4 * 64
        assert out == [base + 4 * 64, base + 5 * 64]

    def test_negative_stride(self):
        p = pf(degree=1, distance=1)
        out = []
        for i in range(6):
            out = p.train(0x400, 0x10000 - i * 64)
        assert out and out[0] < 0x10000 - 5 * 64

    def test_pc_is_irrelevant(self):
        """Streams are tracked by address region: interleaving PCs over
        one sequential region still trains (the real-code case)."""
        p = pf(degree=1, distance=1)
        out = []
        for i in range(8):
            out = p.train(0x400 + (i % 4) * 4, 0x1000 + i * 64)
        assert out

    def test_repeated_address_ignored(self):
        p = pf()
        for _ in range(10):
            assert p.train(0x400, 0x1000) == []

    def test_resync_within_window(self):
        """A skipped line must not kill the stream: after a short
        resynchronisation it prefetches again (no fresh allocation)."""
        p = pf(degree=1, distance=1)
        for i in range(4):
            p.train(0x400, 0x1000 + i * 64)
        p.train(0x400, 0x1000 + 6 * 64)  # skipped lines 4-5
        out = []
        for i in range(7, 10):           # sequential again
            out = out or p.train(0x400, 0x1000 + i * 64)
        assert out  # recovered without re-allocating
        assert p.active_streams == 1

    def test_far_jump_allocates_new_stream(self):
        p = pf(streams=4)
        p.train(0x400, 0x1000)
        p.train(0x400, 0x900_0000)
        assert p.active_streams == 2


class TestStreams:
    def test_stream_capacity(self):
        p = pf(streams=2)
        p.train(0, 0x100_0000)
        p.train(0, 0x200_0000)
        p.train(0, 0x300_0000)  # FIFO-evicts the first region
        assert p.active_streams == 2

    def test_independent_regions(self):
        p = pf(streams=4, degree=1, distance=1)
        a = b = []
        for i in range(6):
            a = p.train(0, 0x100_0000 + i * 64)
            b = p.train(0, 0x800_0000 + i * 128)
        assert a and b
        assert a[0] - (0x100_0000 + 5 * 64) == 64
        assert b[0] - (0x800_0000 + 5 * 128) == 128

    def test_interleaved_streams_both_train(self):
        """Round-robin interleaving of N regions — the catalog's streaming
        pattern — must keep all of them confident."""
        p = pf(streams=8, degree=2, distance=2)
        issued = 0
        for i in range(12):
            for r in range(4):
                out = p.train(0, 0x1000_0000 * (r + 1) + i * 64)
                issued += len(out)
        assert issued > 30
