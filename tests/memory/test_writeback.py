"""Dirty-victim writeback propagation through the hierarchy."""

from dataclasses import replace

from repro.common.params import BASELINE
from repro.memory.hierarchy import MemoryHierarchy


def tiny_hierarchy():
    """Small caches so evictions happen quickly."""
    machine = replace(
        BASELINE,
        l1d=replace(BASELINE.l1d, size=4 * 1024, mshrs=0),
        l2=replace(BASELINE.l2, size=8 * 1024),
        l3=replace(BASELINE.l3, size=16 * 1024),
        name="tiny-mem",
    )
    return MemoryHierarchy(machine)


class TestWritebackPropagation:
    def test_dirty_l1_victim_lands_in_l2(self):
        m = tiny_hierarchy()
        t = m.access(0x5000_0000, 0, is_write=True).done_cycle + 1
        # Evict the dirty line from L1 with same-set fills.
        span = m.l1d.params.num_sets * 64
        for i in range(1, 10):
            t = m.access(0x5000_0000 + i * span, t).done_cycle + 1
        assert not m.l1d.contains(0x5000_0000)
        assert m.l2.contains(0x5000_0000)

    def test_llc_victims_reach_dram(self):
        m = tiny_hierarchy()
        t = 0
        # Write far more dirty lines than the 16KB LLC holds.
        for i in range(600):
            r = m.access(0x5000_0000 + i * 64, t, is_write=True)
            t = r.done_cycle + 1
        assert m.writebacks_to_dram > 0
        # Writebacks consume DRAM accesses beyond the demand fills.
        assert m.dram.accesses > 600

    def test_clean_traffic_never_writes_back(self):
        m = tiny_hierarchy()
        t = 0
        for i in range(600):
            r = m.access(0x5000_0000 + i * 64, t)  # reads only
            t = r.done_cycle + 1
        assert m.writebacks_to_dram == 0

    def test_per_level_writeback_counters(self):
        m = tiny_hierarchy()
        t = 0
        for i in range(600):
            r = m.access(0x5000_0000 + i * 64, t, is_write=True)
            t = r.done_cycle + 1
        assert m.writebacks_to_l2 > 0
        assert m.writebacks_to_l3 > 0
        assert m.writebacks_to_dram > 0

    def test_dram_traffic_split_by_kind(self):
        """The controller attributes every request to demand, writeback
        or prefetch — the sum must equal total accesses."""
        m = tiny_hierarchy()
        t = 0
        for i in range(600):
            r = m.access(0x5000_0000 + i * 64, t, is_write=True)
            t = r.done_cycle + 1
        d = m.dram
        assert d.demand_requests > 0
        assert d.writeback_requests == m.writebacks_to_dram
        assert (d.demand_requests + d.writeback_requests
                + d.prefetch_requests) == d.accesses
