"""Opt-in page translation (physical frame randomisation)."""

from dataclasses import replace

from repro.common.params import BASELINE
from repro.memory.hierarchy import MemoryHierarchy


def shuffled(seed=1):
    return MemoryHierarchy(replace(BASELINE, page_shuffle_seed=seed,
                                   name=f"shuffle{seed}"))


class TestTranslation:
    def test_identity_by_default(self):
        m = MemoryHierarchy(BASELINE)
        for line in (0, 0x1000, 0x5000_0040):
            assert m.translate(line) == line

    def test_offset_preserved(self):
        m = shuffled()
        for line in (0x5000_0040, 0x5000_0FC0, 0x1234_5000):
            assert m.translate(line) & 0xFFF == line & 0xFFF

    def test_stable_within_page(self):
        m = shuffled()
        a = m.translate(0x5000_0000)
        b = m.translate(0x5000_0040)
        assert b - a == 0x40  # same frame, consecutive lines

    def test_deterministic_across_instances(self):
        a, b = shuffled(7), shuffled(7)
        assert a.translate(0x1234_5678 & ~63) == \
            b.translate(0x1234_5678 & ~63)

    def test_different_seeds_differ(self):
        a, b = shuffled(1), shuffled(2)
        lines = [i * 4096 for i in range(64)]
        diffs = sum(a.translate(ln) != b.translate(ln) for ln in lines)
        assert diffs > 48

    def test_pages_scatter(self):
        """Consecutive virtual pages must not stay consecutive."""
        m = shuffled()
        frames = [m.translate(i * 4096) >> 12 for i in range(128)]
        consecutive = sum(1 for x, y in zip(frames, frames[1:])
                          if y == x + 1)
        assert consecutive < 5

    def test_simulation_results_unchanged_by_default(self):
        from repro import OOO, simulate
        a = simulate("x264", BASELINE, OOO, instructions=800, warmup=300)
        b = simulate("x264", BASELINE, OOO, instructions=800, warmup=300)
        assert a.cycles == b.cycles  # identity translation is stable
