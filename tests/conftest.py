"""Shared test fixtures.

Also makes the suite runnable without an installed package (the offline
environment lacks `wheel`, so `pip install -e .` may be unavailable):
``src/`` is prepended to ``sys.path`` when ``repro`` is not importable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

import pytest

from repro.common.params import BASELINE, MachineParams
from repro.workloads.catalog import get_workload


@pytest.fixture(scope="session")
def baseline() -> MachineParams:
    return BASELINE


@pytest.fixture(scope="session")
def small_trace():
    """A short, memory-light trace for fast core tests."""
    return get_workload("x264").build_trace()


def tiny_simulate(workload, policy, instructions=1500, warmup=500,
                  machine=BASELINE):
    """Small-budget simulation helper used across integration tests."""
    from repro.sim import simulate
    return simulate(workload, machine, policy,
                    instructions=instructions, warmup=warmup)
