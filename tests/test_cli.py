"""Command-line interface."""

import pytest

from repro.cli import MACHINES, build_parser, main


class TestParser:
    def test_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "mcf", "RAR", "-n", "500"])
        assert args.command == "run"
        assert args.workload == "mcf"
        assert args.policy == "RAR"
        assert args.instructions == 500

    def test_machine_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "mcf", "-m", "cray-1"])

    def test_machines_registry(self):
        assert "baseline" in MACHINES
        assert MACHINES["core-4"].core.rob_size == 352
        assert MACHINES["baseline+l3pf"].prefetcher is not None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "RAR" in out and "core-4" in out
        assert "THROTTLE" in out

    def test_run(self, capsys):
        assert main(["run", "x264", "OOO", "-n", "500", "-w", "200"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "AVF" in out

    def test_compare(self, capsys):
        assert main(["compare", "x264", "OOO", "RAR",
                     "-n", "500", "-w", "200"]) == 0
        out = capsys.readouterr().out
        assert "MTTF_rel" in out
        assert "RAR" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "wolfenstein", "-n", "100", "-w", "0"])


class TestCharacterizeCommand:
    def test_characterize_named(self, capsys):
        assert main(["characterize", "x264", "-n", "500", "-w", "400"]) == 0
        out = capsys.readouterr().out
        assert "character" in out and "x264" in out

    def test_trace_dump_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        assert main(["trace", "dump", path, "-k", "x264", "-l", "3000"]) == 0
        assert main(["trace", "replay", path, "-p", "OOO",
                     "-n", "500", "-w", "300"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
