"""Command-line interface."""

import pytest

from repro.cli import MACHINES, build_parser, main


class TestParser:
    def test_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "mcf", "RAR", "-n", "500"])
        assert args.command == "run"
        assert args.workload == "mcf"
        assert args.policy == "RAR"
        assert args.instructions == 500

    def test_machine_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "mcf", "-m", "cray-1"])

    def test_machines_registry(self):
        assert "baseline" in MACHINES
        assert MACHINES["core-4"].core.rob_size == 352
        assert MACHINES["baseline+l3pf"].prefetcher is not None

    def test_protocol_machines_registry(self):
        assert MACHINES["baseline-ddr4"].dram.protocol == "ddr4-3200"
        assert MACHINES["baseline-lpddr4"].dram.protocol == "lpddr4-3200"
        assert MACHINES["baseline-hbm2"].dram.channels == 8
        assert MACHINES["baseline-frfcfs"].dram.scheduler == "frfcfs"
        m = MACHINES["baseline-hbm2+l3pf"]
        assert m.dram.protocol == "hbm2" and m.prefetcher is not None
        # Protocol variants must not perturb the core configuration.
        assert MACHINES["baseline-ddr4"].core == MACHINES["baseline"].core


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "RAR" in out and "core-4" in out
        assert "THROTTLE" in out

    def test_run(self, capsys):
        assert main(["run", "x264", "OOO", "-n", "500", "-w", "200"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "AVF" in out

    def test_compare(self, capsys):
        assert main(["compare", "x264", "OOO", "RAR",
                     "-n", "500", "-w", "200"]) == 0
        out = capsys.readouterr().out
        assert "MTTF_rel" in out
        assert "RAR" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "wolfenstein", "-n", "100", "-w", "0"])


class TestMemvalCommand:
    def test_single_preset_passes(self, capsys):
        assert main(["memval", "ddr3-1600"]) == 0
        out = capsys.readouterr().out
        assert "ddr3-1600" in out and "memval OK" in out

    def test_scheduler_flag(self, capsys):
        assert main(["memval", "ddr3-1600", "-s", "frfcfs"]) == 0
        assert "frfcfs" in capsys.readouterr().out

    def test_unknown_preset_rejected(self, capsys):
        assert main(["memval", "ddr9-0"]) == 2
        assert "unknown preset" in capsys.readouterr().out

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["memval", "-s", "lifo"])

    def test_list_shows_protocol_column(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "baseline-hbm2" in out and "dram=hbm2" in out


class TestSweepCommand:
    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "mcf", "x264", "-j", "4",
                                  "--share-warmup"])
        assert args.command == "sweep"
        assert args.workloads == ["mcf", "x264"]
        assert args.jobs == 4
        assert args.share_warmup is True
        assert args.warmup_policy == "OOO"

    def test_sweep_serial(self, capsys):
        assert main(["sweep", "x264", "-p", "OOO", "RAR",
                     "-n", "500", "-w", "200"]) == 0
        out = capsys.readouterr().out
        assert "RAR" in out and "points in" in out and "jobs=1" in out

    def test_sweep_parallel_share_warmup_artifacts(self, tmp_path, capsys):
        import json
        out_json = str(tmp_path / "sweep.json")
        stats_dir = str(tmp_path / "stats")
        assert main(["sweep", "mcf", "x264", "-p", "OOO", "RAR",
                     "-j", "2", "--share-warmup", "-n", "500", "-w", "200",
                     "--out", out_json, "--stats-dir", stats_dir]) == 0
        out = capsys.readouterr().out
        assert "shared warmup under OOO" in out
        payload = json.load(open(out_json))
        assert payload["share_warmup"] is True
        assert len(payload["results"]) == 4
        files = sorted(f for f in __import__("os").listdir(stats_dir))
        assert files == ["mcf_baseline_OOO.json", "mcf_baseline_RAR.json",
                         "x264_baseline_OOO.json", "x264_baseline_RAR.json"]
        stats = json.load(open(f"{stats_dir}/{files[0]}"))
        assert stats["result"]["policy"] == "OOO"

    def test_sweep_matches_single_run(self, tmp_path, capsys):
        """A sweep point equals the same point via `repro run`."""
        import json
        out_json = str(tmp_path / "sweep.json")
        assert main(["sweep", "x264", "-p", "RAR", "-n", "500", "-w", "200",
                     "--out", out_json]) == 0
        from repro.sim import simulate
        from repro.cli import MACHINES
        direct = simulate("x264", MACHINES["baseline"], "RAR",
                          instructions=500, warmup=200)
        (point,) = json.load(open(out_json))["results"]
        assert point == direct.to_dict()


class TestScalingCommand:
    def test_scaling_exit_code_and_table(self, capsys):
        assert main(["scaling", "x264", "RAR", "-n", "300", "-w", "150"]) == 0
        out = capsys.readouterr().out
        assert "MTTF_rel" in out
        assert "core-1" in out and "core-4" in out


class TestTelemetryFlags:
    def _run(self, tmp_path, *extra):
        s = str(tmp_path / "s.json")
        t = str(tmp_path / "t.json")
        code = main(["run", "mcf", "--policy", "RAR", "-n", "2000",
                     "-w", "1000", "--stats-out", s, "--trace-out", t,
                     "--interval", "200", *extra])
        return code, s, t

    def test_artifacts_are_valid_json(self, tmp_path, capsys):
        import json
        code, s, t = self._run(tmp_path)
        assert code == 0
        with open(s) as f:
            stats = json.load(f)
        with open(t) as f:
            trace = json.load(f)
        assert stats["schema"] == "repro-stats-v1"
        assert stats["result"]["policy"] == "RAR"
        assert len(stats["timeline"]["samples"]) >= 10
        from repro.obs import validate_chrome_trace
        assert validate_chrome_trace(trace) is None
        out = capsys.readouterr().out
        assert "stats" in out and "perfetto" in out

    def test_stats_reconcile_with_printed_result(self, tmp_path, capsys):
        import json
        from repro.obs import flatten_tree
        code, s, _ = self._run(tmp_path)
        assert code == 0
        stats = json.load(open(s))
        flat = flatten_tree(stats["stats"])
        r = stats["result"]
        assert flat["core.commit.committed"] == r["instructions"]
        assert flat["core.clock.cycles"] == r["cycles"]
        assert flat["ace.total"] == r["abc_total"]

    def test_policy_option_overrides_positional(self, tmp_path):
        import json
        s = str(tmp_path / "s.json")
        assert main(["run", "mcf", "OOO", "--policy", "RAR", "-n", "500",
                     "-w", "200", "--stats-out", s]) == 0
        assert json.load(open(s))["result"]["policy"] == "RAR"

    def test_timeline_out_csv(self, tmp_path, capsys):
        tl = str(tmp_path / "tl.csv")
        assert main(["run", "x264", "OOO", "-n", "500", "-w", "200",
                     "--timeline-out", tl, "--interval", "100"]) == 0
        with open(tl) as f:
            header = f.readline().strip().split(",")
        assert "rob_occ" in header and "mode" in header

    def test_profile_prints_kips(self, capsys):
        assert main(["run", "x264", "OOO", "-n", "400", "-w", "100",
                     "--profile"]) == 0
        assert "KIPS" in capsys.readouterr().out


class TestReportCommand:
    def test_report_round_trips_stats_file(self, tmp_path, capsys):
        s = str(tmp_path / "s.json")
        assert main(["run", "mcf", "--policy", "RAR", "-n", "1000",
                     "-w", "500", "--stats-out", s,
                     "--interval", "200"]) == 0
        capsys.readouterr()
        assert main(["report", s]) == 0
        out = capsys.readouterr().out
        assert "core.commit.committed" in out
        assert "ace.total" in out
        assert "timeline" in out
        assert "mcf" in out and "RAR" in out

    def test_report_on_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            main(["report", "/nonexistent/stats.json"])


class TestCharacterizeCommand:
    def test_characterize_named(self, capsys):
        assert main(["characterize", "x264", "-n", "500", "-w", "400"]) == 0
        out = capsys.readouterr().out
        assert "character" in out and "x264" in out

    def test_trace_dump_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        assert main(["trace", "dump", path, "-k", "x264", "-l", "3000"]) == 0
        assert main(["trace", "replay", path, "-p", "OOO",
                     "-n", "500", "-w", "300"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out


class TestGoldenCommand:
    def test_parser_requires_mode(self):
        parser = build_parser()
        args = parser.parse_args(["golden", "--check", "--jobs", "2"])
        assert args.command == "golden" and args.check and not args.regen
        assert args.jobs == 2
        with pytest.raises(SystemExit):
            parser.parse_args(["golden"])  # --check or --regen required
        with pytest.raises(SystemExit):
            parser.parse_args(["golden", "--check", "--regen"])

    def test_regen_check_roundtrip(self, tmp_path, capsys, monkeypatch):
        from repro.common.params import BASELINE
        from repro.validate import golden
        monkeypatch.setattr(golden, "GOLDEN_MACHINES",
                            {"baseline": BASELINE})
        monkeypatch.setattr(golden, "GOLDEN_POLICIES", ("RAR",))
        d = str(tmp_path / "golden")
        assert main(["golden", "--regen", "--dir", d,
                     "-n", "300", "-w", "200"]) == 0
        assert "froze" in capsys.readouterr().out
        assert main(["golden", "--check", "--dir", d]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_missing_dir_fails(self, tmp_path, capsys):
        assert main(["golden", "--check",
                     "--dir", str(tmp_path / "nope")]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestOracleFlag:
    def test_run_with_oracle(self, capsys):
        assert main(["run", "x264", "OOO", "-n", "300", "-w", "100",
                     "--oracle", "--validate"]) == 0
        assert "IPC" in capsys.readouterr().out


class TestLedgerFlag:
    def test_parser_accepts_ledger_and_global_log_flags(self):
        parser = build_parser()
        args = parser.parse_args(["--log-json", "--quiet", "sweep", "mcf",
                                  "--ledger", "l.jsonl"])
        assert args.log_json and args.quiet and args.ledger == "l.jsonl"
        args = parser.parse_args(["-v", "top", "l.jsonl", "--once"])
        assert args.verbose and args.command == "top" and args.once

    def test_sweep_writes_auditable_ledger(self, tmp_path, capsys):
        from repro.obs.ledger import check_complete, read_ledger
        path = str(tmp_path / "l.jsonl")
        assert main(["sweep", "x264", "-p", "OOO", "RAR", "-n", "500",
                     "-w", "200", "--ledger", path]) == 0
        assert "run ledger" in capsys.readouterr().out
        events = read_ledger(path)
        assert check_complete(events) == []
        assert events[0]["ev"] == "sweep_start"
        assert events[0]["manifest"]["schema"] == "repro-manifest-v1"
        assert events[-1]["ev"] == "sweep_done"
        done = [e for e in events if e["ev"] == "point_done"]
        assert len(done) == 2
        for e in done:
            assert e["manifest"]["params_digest"]
            assert e["kips"] > 0 and e["wall_s"] > 0

    def test_sweep_cache_hits_ledgered(self, tmp_path, capsys):
        from repro.obs.ledger import read_ledger
        cache = str(tmp_path / "cache.json")
        path = str(tmp_path / "second.jsonl")
        args = ["sweep", "x264", "-p", "OOO", "-n", "500", "-w", "200",
                "--cache", cache]
        assert main(args) == 0
        assert main(args + ["--ledger", path]) == 0
        capsys.readouterr()
        events = read_ledger(path)
        assert [e["ev"] for e in events if e["ev"].startswith("point")] \
               == ["point_cached"]

    def test_top_once_renders_finished_sweep(self, tmp_path, capsys):
        path = str(tmp_path / "l.jsonl")
        assert main(["sweep", "x264", "-p", "OOO", "-n", "500", "-w", "200",
                     "--ledger", path]) == 0
        capsys.readouterr()
        assert main(["top", path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "[done]" in out
        assert "1/1" in out and "workers:" in out

    def test_report_dispatches_ledger_files(self, tmp_path, capsys):
        path = str(tmp_path / "l.jsonl")
        assert main(["sweep", "x264", "-p", "OOO", "-n", "500", "-w", "200",
                     "--ledger", path]) == 0
        capsys.readouterr()
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "ledger audit: every point has exactly one terminal " \
               "event" in out

    def test_stats_artifacts_carry_manifest(self, tmp_path):
        import json
        stats_dir = str(tmp_path / "stats")
        assert main(["sweep", "x264", "-p", "OOO", "-n", "500", "-w", "200",
                     "--stats-dir", stats_dir]) == 0
        stats = json.load(open(f"{stats_dir}/x264_baseline_OOO.json"))
        mani = stats["manifest"]
        assert mani["schema"] == "repro-manifest-v1"
        assert mani["point"]["policy"] == "OOO"
        assert mani["point"]["params_digest"]


class TestLogFlags:
    def test_log_json_structures_diagnostics(self, tmp_path, capsys):
        import json
        from repro.obs import log as obs_log
        path = str(tmp_path / "l.jsonl")
        try:
            assert main(["--log-json", "sweep", "x264", "-p", "OOO",
                         "-n", "500", "-w", "200", "--ledger", path]) == 0
        finally:
            obs_log.reset()
        err = capsys.readouterr().err
        lines = [json.loads(ln) for ln in err.splitlines() if ln]
        assert any(rec["msg"] == "sweep start" for rec in lines)
        assert any(rec["msg"] == "sweep done" for rec in lines)

    def test_quiet_silences_diagnostics(self, capsys):
        from repro.obs import log as obs_log
        try:
            assert main(["--quiet", "sweep", "x264", "-p", "OOO",
                         "-n", "500", "-w", "200"]) == 0
        finally:
            obs_log.reset()
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "points in" in captured.out  # human output stays on stdout


class TestFarmCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "/tmp/spool"])
        assert args.command == "serve"
        assert args.spool == "/tmp/spool"
        assert args.jobs == 2 and args.max_requests == 0
        assert args.idle_exit == 0.0 and args.max_retries == 2

    def test_submit_parser(self):
        args = build_parser().parse_args(
            ["submit", "/tmp/spool", "mcf", "-p", "OOO", "RAR",
             "--wait", "--timeout", "30", "-n", "500"])
        assert args.command == "submit"
        assert args.workloads == ["mcf"]
        assert args.policies == ["OOO", "RAR"]
        assert args.wait and args.timeout == 30.0
        assert args.instructions == 500

    def test_submit_then_serve_round_trip(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert main(["submit", spool, "mcf", "-p", "OOO",
                     "-n", "800", "-w", "300"]) == 0
        assert main(["serve", spool, "-j", "1", "--max-requests", "1"]) == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "served 1 request(s)" in out
        # a --wait with no server running times out with exit 1
        assert main(["submit", spool, "mcf", "-p", "OOO", "-n", "800",
                     "-w", "300", "--wait", "--timeout", "0.3"]) == 1
        assert "timed out" in capsys.readouterr().err

    def test_sweep_exit_code_reports_failures(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_FARM_RAISE", "mcf:RAR")
        rc = main(["sweep", "mcf", "-p", "OOO", "RAR",
                   "-n", "800", "-w", "300"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAILED mcf/baseline/RAR" in captured.out
        assert "1 point(s) failed" in captured.err


class TestWarmupMode:
    def test_parser_accepts_and_rejects_modes(self):
        parser = build_parser()
        for cmd in (["run", "mcf"], ["sweep", "mcf"],
                    ["submit", "/tmp/spool", "mcf"]):
            args = parser.parse_args(cmd + ["--warmup-mode", "fast"])
            assert args.warmup_mode == "fast"
            assert parser.parse_args(cmd).warmup_mode == "detailed"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "mcf", "--warmup-mode", "warp"])

    def test_run_fast_mode(self, capsys):
        assert main(["run", "mcf", "RAR", "-n", "500", "-w", "400",
                     "--warmup-mode", "fast"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "AVF" in out

    def test_sweep_fast_mode_stamps_artifacts(self, tmp_path, capsys):
        import json
        out_file = tmp_path / "sweep.json"
        assert main(["sweep", "mcf", "-p", "OOO", "-n", "500", "-w", "400",
                     "--warmup-mode", "fast", "--out", str(out_file)]) == 0
        assert "fast warmup" in capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert payload["warmup_mode"] == "fast"

    def test_warmval_tiny_grid(self, tmp_path, capsys):
        report_file = tmp_path / "warmval.json"
        import json
        rc = main(["warmval", "mcf", "-p", "OOO", "RAR",
                   "-n", "800", "-w", "600",
                   "--report", str(report_file)])
        out = capsys.readouterr().out
        assert "dIPC" in out and "warmup wall" in out
        payload = json.loads(report_file.read_text())
        assert payload["schema"] == 1
        assert len(payload["points"]) == 2
        assert rc == (0 if payload["ok"] else 1)
