"""Atomic JSON writes."""

import json
import os

import pytest

from repro.common.io import atomic_write_json


class TestAtomicWriteJson:
    def test_writes_valid_json(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1, "b": [2, 3]})
        assert json.load(open(path)) == {"a": 1, "b": [2, 3]}

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"long": "x" * 4096})
        atomic_write_json(path, {"short": 1})
        assert json.load(open(path)) == {"short": 1}

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, [1, 2, 3])
        assert os.listdir(str(tmp_path)) == ["out.json"]

    def test_failure_keeps_previous_file_and_cleans_up(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.load(open(path)) == {"v": 1}
        assert os.listdir(str(tmp_path)) == ["out.json"]
