"""Atomic JSON writes and the append-only JSONL helpers."""

import json
import os

import pytest

from repro.common.io import append_jsonl, atomic_write_json, iter_jsonl, \
    read_jsonl


class TestAtomicWriteJson:
    def test_writes_valid_json(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1, "b": [2, 3]})
        assert json.load(open(path)) == {"a": 1, "b": [2, 3]}

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"long": "x" * 4096})
        atomic_write_json(path, {"short": 1})
        assert json.load(open(path)) == {"short": 1}

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, [1, 2, 3])
        assert os.listdir(str(tmp_path)) == ["out.json"]

    def test_failure_keeps_previous_file_and_cleans_up(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.load(open(path)) == {"v": 1}
        assert os.listdir(str(tmp_path)) == ["out.json"]


class TestJsonl:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_jsonl(path, {"ev": "a", "n": 1})
        append_jsonl(path, {"ev": "b", "nested": {"k": [1, 2]}})
        assert read_jsonl(path) == [{"ev": "a", "n": 1},
                                    {"ev": "b", "nested": {"k": [1, 2]}}]

    def test_one_record_per_line(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_jsonl(path, {"s": "two\nlines"})  # newline must be escaped
        append_jsonl(path, {"n": 2})
        with open(path) as f:
            lines = f.read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"s": "two\nlines"}

    def test_torn_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_jsonl(path, {"n": 1})
        with open(path, "a") as f:
            f.write('{"n": 2, "tor')  # in-flight append, no newline yet
        assert read_jsonl(path) == [{"n": 1}]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w") as f:
            f.write('{"n": 1}\nnot json\n{"n": 3}\n')
        with pytest.raises(ValueError, match="corrupt JSONL"):
            read_jsonl(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w") as f:
            f.write('{"n": 1}\n\n{"n": 2}\n')
        assert [r["n"] for r in iter_jsonl(path)] == [1, 2]

    def test_non_serialisable_falls_back_to_str(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_jsonl(path, {"obj": complex(1, 2)})
        (rec,) = read_jsonl(path)
        assert isinstance(rec["obj"], str)
