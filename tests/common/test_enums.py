"""Uop class semantics the rest of the simulator relies on."""

from repro.common.enums import Mode, SquashCause, UopClass


class TestUopClass:
    def test_mem_classes(self):
        assert UopClass.LOAD.is_mem
        assert UopClass.STORE.is_mem
        assert not UopClass.INT_ADD.is_mem
        assert not UopClass.BRANCH.is_mem

    def test_fp_classes(self):
        assert UopClass.FP_ADD.is_fp
        assert UopClass.FP_MUL.is_fp
        assert UopClass.FP_DIV.is_fp
        assert not UopClass.INT_MUL.is_fp
        assert not UopClass.LOAD.is_fp

    def test_dest_writers(self):
        writers = {c for c in UopClass if c.has_dest}
        assert UopClass.LOAD in writers
        assert UopClass.INT_ADD in writers
        assert UopClass.FP_DIV in writers
        # Stores, branches, NOPs and compares write no renamed register.
        assert UopClass.STORE not in writers
        assert UopClass.BRANCH not in writers
        assert UopClass.NOP not in writers
        assert UopClass.INT_CMP not in writers

    def test_values_stable(self):
        # Hot paths compare raw ints; the mapping must never change.
        assert int(UopClass.NOP) == 0
        assert int(UopClass.LOAD) == 7
        assert int(UopClass.STORE) == 8
        assert int(UopClass.BRANCH) == 9


class TestModes:
    def test_mode_values(self):
        assert Mode.NORMAL == 0
        assert Mode.RUNAHEAD == 1
        assert Mode.FLUSH_STALL == 2

    def test_squash_causes_distinct(self):
        values = [int(c) for c in SquashCause]
        assert len(values) == len(set(values))
