"""Tables I, II and III must be encoded exactly as the paper specifies."""


from repro.common.params import (
    BASELINE,
    BIT_BUDGET,
    CORE1,
    CORE2,
    CORE3,
    CORE4,
    SCALED_MACHINES,
    CacheParams,
    CoreParams,
    DramParams,
    MachineParams,
    PrefetcherParams,
)


class TestTable2Baseline:
    def test_rob_size(self):
        assert BASELINE.core.rob_size == 192

    def test_issue_queue(self):
        assert BASELINE.core.iq_size == 92

    def test_load_store_queues(self):
        assert BASELINE.core.lq_size == 64
        assert BASELINE.core.sq_size == 64

    def test_width_and_depth(self):
        assert BASELINE.core.width == 4
        assert BASELINE.core.frontend_depth == 8

    def test_registers(self):
        assert BASELINE.core.int_regs == 168
        assert BASELINE.core.fp_regs == 168

    def test_sst_and_prdq(self):
        assert BASELINE.core.sst_size == 128
        assert BASELINE.core.prdq_size == 192

    def test_caches(self):
        assert BASELINE.l1i.size == 32 * 1024 and BASELINE.l1i.assoc == 4
        assert BASELINE.l1d.size == 32 * 1024 and BASELINE.l1d.assoc == 8
        assert BASELINE.l1d.latency == 4 and BASELINE.l1d.mshrs == 20
        assert BASELINE.l2.size == 256 * 1024 and BASELINE.l2.latency == 8
        assert BASELINE.l3.size == 1024 * 1024 and BASELINE.l3.assoc == 16
        assert BASELINE.l3.latency == 30

    def test_fu_latencies(self):
        fus = BASELINE.core.fu_params()
        from repro.common.enums import UopClass
        assert fus[int(UopClass.INT_ADD)].count == 3
        assert fus[int(UopClass.INT_ADD)].latency == 1
        assert fus[int(UopClass.INT_MUL)].latency == 3
        assert fus[int(UopClass.INT_DIV)].latency == 18
        assert not fus[int(UopClass.INT_DIV)].pipelined
        assert fus[int(UopClass.FP_ADD)].latency == 3
        assert fus[int(UopClass.FP_MUL)].latency == 5
        assert fus[int(UopClass.FP_DIV)].latency == 6

    def test_no_prefetcher_by_default(self):
        assert BASELINE.prefetcher is None


class TestTable1Scaling:
    def test_four_generations(self):
        robs = [m.core.rob_size for m in SCALED_MACHINES]
        assert robs == [128, 192, 224, 352]

    def test_core1(self):
        c = CORE1.core
        assert (c.iq_size, c.lq_size, c.sq_size) == (36, 48, 32)
        assert c.int_regs == c.fp_regs == 120

    def test_core4(self):
        c = CORE4.core
        assert (c.iq_size, c.lq_size, c.sq_size) == (128, 128, 72)
        assert c.int_regs == 256

    def test_baseline_is_core2(self):
        assert BASELINE.core == CORE2.core

    def test_total_bits_grow_monotonically(self):
        bits = [m.core.total_bits for m in SCALED_MACHINES]
        assert bits == sorted(bits)
        # Core-4 exposes substantially more unprotected state than Core-1
        # (the premise of Figure 4).
        assert bits[-1] / bits[0] > 1.8

    def test_core3_matches_table(self):
        c = CORE3.core
        assert (c.rob_size, c.iq_size, c.lq_size, c.sq_size) == (224, 97, 64, 60)


class TestTable3BitBudgets:
    def test_entry_bits(self):
        assert BIT_BUDGET["rob"] == 120
        assert BIT_BUDGET["iq"] == 80
        assert BIT_BUDGET["lq"] == 120
        assert BIT_BUDGET["sq"] == 184

    def test_register_bits(self):
        assert BIT_BUDGET["int_reg"] == 64
        assert BIT_BUDGET["fp_reg"] == 128

    def test_fu_widths(self):
        assert BIT_BUDGET["int_fu"] == 64
        assert BIT_BUDGET["fp_fu"] == 128

    def test_total_bits_formula(self):
        c = CoreParams()
        expected = (192 * 120 + 92 * 80 + 64 * 120 + 64 * 184
                    + 168 * 64 + 168 * 128)
        assert c.total_bits == expected


class TestCacheParams:
    def test_num_sets(self):
        p = CacheParams(size=32 * 1024, assoc=8, latency=4)
        assert p.num_sets == 64

    def test_machine_with_core_replaces_name(self):
        m = BASELINE.with_core(CORE1.core, name="shrunk")
        assert m.name == "shrunk"
        assert m.core.rob_size == 128
        assert m.l3 == BASELINE.l3

    def test_with_prefetcher(self):
        m = BASELINE.with_prefetcher(PrefetcherParams(levels=("l3",)),
                                     name="pf")
        assert m.prefetcher is not None
        assert m.prefetcher.levels == ("l3",)
        assert BASELINE.prefetcher is None  # original untouched


class TestDramParams:
    def test_row_latencies(self):
        d = DramParams()
        assert d.row_hit_latency == d.controller_latency + d.t_cl
        assert d.row_miss_latency == (
            d.controller_latency + d.t_rp + d.t_rcd + d.t_cl)
        assert d.row_miss_latency > d.row_hit_latency

    def test_bank_count(self):
        d = DramParams(ranks=4, banks_per_rank=8)
        assert d.num_banks == 32

    def test_protocol_defaults_preserve_seed_model(self):
        """The new protocol knobs must default to the legacy behaviour:
        one channel, no refresh, fcfs, row-interleaved mapping."""
        d = DramParams()
        assert d.protocol == "ddr3-1600"
        assert d.channels == 1
        assert d.t_refi == 0 and d.t_rfc == 0
        assert d.scheduler == "fcfs"
        assert d.mapping == "row"

    def test_total_banks_spans_channels(self):
        d = DramParams(channels=4, ranks=1, banks_per_rank=8)
        assert d.num_banks == 8       # per channel
        assert d.total_banks == 32    # across channels

    def test_peak_bandwidth_scales_with_channels(self):
        one = DramParams(channels=1, bus_cycles_per_access=4)
        four = DramParams(channels=4, bus_cycles_per_access=4)
        assert one.peak_bandwidth == 16.0
        assert four.peak_bandwidth == 64.0

    def test_with_dram_replaces_only_dram(self):
        from repro.memory.dram import dram_preset
        m = BASELINE.with_dram(dram_preset("hbm2"), name="hbm")
        assert m.name == "hbm"
        assert m.dram.protocol == "hbm2"
        assert m.core == BASELINE.core
        assert BASELINE.dram.protocol == "ddr3-1600"  # original untouched

    def test_machines_hashable(self):
        {BASELINE: 1, CORE1: 2}  # usable as cache keys
