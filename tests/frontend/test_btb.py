"""Branch target buffer."""

import pytest

from repro.frontend.btb import Btb


class TestBtb:
    def test_miss_then_hit(self):
        b = Btb(entries=16)
        assert b.lookup(0x4000) == -1
        b.update(0x4000, 0x5000)
        assert b.lookup(0x4000) == 0x5000

    def test_alias_eviction(self):
        b = Btb(entries=16)
        b.update(0x10, 0xAAA)
        b.update(0x10 + 16, 0xBBB)  # same index, different tag
        assert b.lookup(0x10) == -1
        assert b.lookup(0x10 + 16) == 0xBBB

    def test_stats(self):
        b = Btb(entries=16)
        b.lookup(0x4)
        b.update(0x4, 0x8)
        b.lookup(0x4)
        assert b.misses == 1 and b.hits == 1

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            Btb(entries=100)
