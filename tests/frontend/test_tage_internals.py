"""TAGE component internals: folding, allocation, corrector polarity."""

import random

from repro.frontend.tage import TageScL, _TaggedTable


class TestTaggedTable:
    def test_fold_reduces_history(self):
        t = _TaggedTable(size=256, tag_bits=8, hist_len=32)
        h = (1 << 31) | 1
        folded = t.fold(h, 8)
        assert 0 <= folded < (1 << 8)

    def test_fold_respects_history_length(self):
        t = _TaggedTable(size=256, tag_bits=8, hist_len=8)
        # Bits beyond hist_len must not affect the fold.
        assert t.fold(0xFF, 8) == t.fold(0xFFFF00FF & 0xFF | (1 << 20), 8)

    def test_index_in_range(self):
        t = _TaggedTable(size=256, tag_bits=8, hist_len=16)
        for pc in (0, 0x400000, 0xFFFFFFFF):
            assert 0 <= t.index(pc, 0b1010) < 256

    def test_tag_nonzero(self):
        t = _TaggedTable(size=256, tag_bits=8, hist_len=16)
        # Tag 0 means "empty", so computed tags must never be 0.
        for pc in range(0, 4096, 97):
            assert t.tag(pc, pc * 3) != 0


class TestAllocation:
    def test_mispredicts_allocate_tagged_entries(self):
        p = TageScL(num_tables=4, table_size=128)
        rng = random.Random(3)
        # History-correlated branch that the bimodal alone cannot learn.
        for _ in range(600):
            lead = rng.random() < 0.5
            p.observe(0x111, lead)
            p.observe(0x222, not lead)
        allocated = sum(
            1 for t in p.tables for tag in t.tags if tag != 0)
        assert allocated > 0

    def test_useful_counters_move(self):
        p = TageScL(num_tables=4, table_size=128)
        rng = random.Random(4)
        for _ in range(800):
            lead = rng.random() < 0.5
            p.observe(0x111, lead)
            p.observe(0x222, lead)
        useful = sum(u for t in p.tables for u in t.useful)
        assert useful > 0


class TestStatisticalCorrector:
    def test_flips_only_on_positive_drift(self):
        """sc >= 12 means 'TAGE persistently wrong' -> flip; negative
        drift (TAGE right) must never flip."""
        p = TageScL()
        p._sc[0x400] = -16  # TAGE has been consistently right
        base, _, _ = p._tage_predict(0x400)
        assert p.predict(0x400) == base
        p._sc[0x400] = 16  # TAGE consistently wrong
        assert p.predict(0x400) != base

    def test_sc_table_bounded(self):
        p = TageScL()
        for pc in range(0, 5000 * 4, 4):
            p.observe(pc, True)
        assert len(p._sc) <= 4096
