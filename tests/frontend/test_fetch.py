"""Front-end pipe timing and wrong-path synthesis."""

from repro.common.enums import UopClass
from repro.frontend.fetch import FrontEnd, WrongPathSource
from repro.isa.uop import DynUop, StaticUop


def dyn(i=0):
    return DynUop(StaticUop(idx=i, pc=0x400000, cls=int(UopClass.INT_ADD)),
                  seq=i + 1)


class TestFrontEnd:
    def test_depth_latency(self):
        fe = FrontEnd(width=4, depth=8)
        u = dyn()
        fe.push(u, cycle=10)
        assert fe.peek_ready(17) is None
        assert fe.peek_ready(18) is u

    def test_capacity(self):
        fe = FrontEnd(width=4, depth=2, capacity=3)
        for i in range(3):
            assert fe.can_fetch(0)
            fe.push(dyn(i), 0)
        assert fe.full
        assert not fe.can_fetch(0)

    def test_fifo_order(self):
        fe = FrontEnd(width=4, depth=1)
        a, b = dyn(0), dyn(1)
        fe.push(a, 0)
        fe.push(b, 0)
        assert fe.pop() is a
        assert fe.pop() is b

    def test_redirect_clears_and_gates(self):
        fe = FrontEnd(width=4, depth=8)
        fe.push(dyn(), 0)
        fe.redirect(100)
        assert len(fe) == 0
        assert not fe.can_fetch(107)
        assert fe.can_fetch(108)

    def test_redirect_overrides_previous_gate(self):
        fe = FrontEnd(width=4, depth=8)
        fe.redirect(0, penalty=1 << 60)  # parked
        fe.redirect(50)  # re-steer must reopen
        assert fe.can_fetch(58)

    def test_next_arrival(self):
        fe = FrontEnd(width=4, depth=8)
        assert fe.next_arrival() is None
        fe.push(dyn(), 5)
        assert fe.next_arrival() == 13

    def test_iteration(self):
        fe = FrontEnd(width=4, depth=1)
        uops = [dyn(i) for i in range(3)]
        for u in uops:
            fe.push(u, 0)
        assert list(fe) == uops


class TestWrongPathSource:
    def test_negative_indices(self):
        src = WrongPathSource(seed=1)
        for _ in range(10):
            assert src.next_uop(100).idx < 0

    def test_deterministic(self):
        a = WrongPathSource(seed=5)
        b = WrongPathSource(seed=5)
        for _ in range(20):
            ua, ub = a.next_uop(0), b.next_uop(0)
            assert (ua.cls, ua.addr) == (ub.cls, ub.addr)

    def test_contains_memory_ops(self):
        src = WrongPathSource(seed=2)
        classes = {src.next_uop(0).cls for _ in range(32)}
        assert int(UopClass.LOAD) in classes
        assert int(UopClass.STORE) in classes

    def test_loads_have_addresses(self):
        src = WrongPathSource(seed=3)
        for _ in range(32):
            u = src.next_uop(0)
            if u.is_mem:
                assert u.addr >= 0
