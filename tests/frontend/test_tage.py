"""TAGE-SC-L predictor learning behaviour."""

import random

from repro.frontend.tage import TageScL


class TestBasicLearning:
    def test_always_taken(self):
        p = TageScL()
        for _ in range(200):
            p.observe(0x4000, True)
        assert p.predict(0x4000)

    def test_always_not_taken(self):
        p = TageScL()
        for _ in range(200):
            p.observe(0x4000, False)
        assert not p.predict(0x4000)

    def test_biased_branch_accuracy(self):
        """A 90%-biased random branch must be predicted ~90% correctly
        (the statistical corrector must never invert a good prediction)."""
        p = TageScL()
        rng = random.Random(1)
        correct = total = 0
        for i in range(4000):
            taken = rng.random() < 0.9
            pred = p.observe(0x4000, taken)
            if i > 500:
                total += 1
                correct += pred == taken
        assert correct / total > 0.82

    def test_alternating_pattern_learned(self):
        p = TageScL()
        correct = 0
        for i in range(2000):
            taken = bool(i & 1)
            pred = p.observe(0x4000, taken)
            if i > 1000:
                correct += pred == taken
        assert correct / 999 > 0.95

    def test_history_correlated_branches(self):
        """Second branch repeats the first's outcome: TAGE history should
        learn the correlation."""
        p = TageScL()
        rng = random.Random(7)
        correct = total = 0
        for i in range(4000):
            first = rng.random() < 0.5
            p.observe(0x1000, first)
            pred = p.observe(0x2000, first)
            if i > 2000:
                total += 1
                correct += pred == first
        assert correct / total > 0.9


class TestLoopPredictor:
    def test_fixed_trip_count(self):
        p = TageScL()
        correct = total = 0
        for lap in range(80):
            for i in range(8):
                taken = i < 7  # 7 taken, then exit
                pred = p.observe(0x4000, taken)
                if lap > 40:
                    total += 1
                    correct += pred == taken
        assert correct / total > 0.97


class TestStatsAndHistory:
    def test_mispredict_rate_tracked(self):
        p = TageScL()
        for _ in range(100):
            p.observe(0x4000, True)
        assert p.predictions == 100
        assert p.mispredict_rate < 0.2

    def test_history_shifts(self):
        p = TageScL()
        p.shift_history(True)
        p.shift_history(False)
        p.shift_history(True)
        assert p.hist & 0b111 == 0b101

    def test_history_bounded(self):
        p = TageScL()
        for _ in range(1000):
            p.shift_history(True)
        assert p.hist < (1 << 256)

    def test_observe_returns_prediction_made_before_update(self):
        p = TageScL()
        first = p.observe(0x4000, True)
        assert isinstance(first, bool)

    def test_distinct_pcs_independent(self):
        p = TageScL()
        for _ in range(300):
            p.observe(0x1000, True)
            p.observe(0x2000, False)
        assert p.predict(0x1000)
        assert not p.predict(0x2000)
