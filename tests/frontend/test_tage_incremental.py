"""Incrementally folded TAGE histories must match the from-scratch fold.

PR 4 replaced the per-prediction ``fold()`` recomputation with folded-
history CSRs advanced on every history shift (what the hardware keeps).
These tests pin the fast path to the old slow path: identical CSR values,
identical predictions, identical trained state.
"""

import random

from repro.frontend.tage import TageScL, _TaggedTable


def _stream(n, seed=7):
    rng = random.Random(seed)
    pcs = [0x4000 + 4 * i for i in range(97)]
    for _ in range(n):
        yield pcs[rng.randrange(len(pcs))], rng.random() < 0.6


def test_csrs_match_from_scratch_fold():
    p = TageScL()
    for pc, taken in _stream(3000):
        p.observe(pc, taken)
        for t in p.tables:
            assert t.f_idx == t.fold(p.hist, t._idx_bits)
            assert t.f_tag == t.fold(p.hist, t.tag_bits)


def test_predictions_identical_to_slow_path():
    """A twin predictor whose CSRs are refolded from scratch before every
    branch (the old code path) must predict and train identically."""
    fast = TageScL()
    slow = TageScL()
    for pc, taken in _stream(3000, seed=11):
        slow.hist = slow.hist  # setter refolds every CSR from scratch
        assert fast.observe(pc, taken) == slow.observe(pc, taken)
    assert fast.hist == slow.hist
    assert fast.mispredictions == slow.mispredictions
    assert fast.bimodal == slow.bimodal
    for a, b in zip(fast.tables, slow.tables):
        assert a.tags == b.tags
        assert a.ctrs == b.ctrs
        assert a.useful == b.useful


def test_hist_overwrite_refolds():
    """Runahead exit restores a checkpointed history via the setter; every
    CSR must come back consistent with the restored value."""
    p = TageScL()
    for pc, taken in _stream(500, seed=3):
        p.observe(pc, taken)
    ckpt = p.hist
    for pc, taken in _stream(200, seed=5):
        p.observe(pc, taken)
    p.hist = ckpt
    for t in p.tables:
        assert t.f_idx == t.fold(ckpt, t._idx_bits)
        assert t.f_tag == t.fold(ckpt, t.tag_bits)


def test_edge_fold_widths():
    """The shift formula's edge cases: fold width wider than the history
    window (B > L) and window an exact multiple of the width (L % B == 0)."""
    for size, tag_bits, hist_len in ((1024, 9, 4), (16, 4, 8), (16, 4, 64)):
        t = _TaggedTable(size, tag_bits, hist_len)
        hist = 0
        rng = random.Random(hist_len)
        for _ in range(1000):
            b = rng.randrange(2)
            t.shift_folded(hist, b)
            hist = (hist << 1) | b
            assert t.f_idx == t.fold(hist, t._idx_bits)
            assert t.f_tag == t.fold(hist, t.tag_bits)
