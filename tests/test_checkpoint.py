"""Checkpoint capture/fork and the bit-identity determinism contract."""

import pytest

from repro.analysis.experiments import ExperimentRunner
from repro.checkpoint import Checkpoint, simulate_from, warm_checkpoint
from repro.common.params import BASELINE, CORE1
from repro.sim import SimResult, simulate

#: The paper's five main policies — the acceptance criterion demands
#: bit-identity for every one of them.
POLICIES = ("OOO", "FLUSH", "TR", "PRE", "RAR")

N, W = 1000, 500


class TestBitIdentity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_fork_matches_cold_run(self, policy):
        """simulate_from(warm_checkpoint(P), P) == cold simulate(P)."""
        cold = simulate("mcf", BASELINE, policy, instructions=N, warmup=W,
                        seed=7)
        ck = warm_checkpoint("mcf", BASELINE, policy, warmup=W, seed=7)
        forked = simulate_from(ck, instructions=N)
        assert forked == cold  # every field, bit for bit

    def test_serial_forked_and_multiprocess_agree(self, tmp_path):
        """The three execution paths produce identical SimResults."""
        workloads = ("mcf", "x264")
        cold = {(w, p): simulate(w, BASELINE, p, instructions=N, warmup=W)
                for w in workloads for p in POLICIES}

        forked = {}
        for w in workloads:
            for p in POLICIES:
                ck = warm_checkpoint(w, BASELINE, p, warmup=W)
                forked[(w, p)] = simulate_from(ck, instructions=N)

        runner = ExperimentRunner(instructions=N, warmup=W,
                                  cache_path=str(tmp_path / "cache.json"))
        matrix = runner.run_matrix(workloads, BASELINE, POLICIES, jobs=2)

        for w in workloads:
            for p in POLICIES:
                assert forked[(w, p)] == cold[(w, p)], (w, p, "forked")
                assert matrix[p][w] == cold[(w, p)], (w, p, "multiprocess")

    def test_double_fork_no_cross_contamination(self):
        """Two forks of one checkpoint are independent and identical."""
        ck = warm_checkpoint("mcf", BASELINE, "RAR", warmup=W, seed=3)
        first = simulate_from(ck, instructions=N)
        second = simulate_from(ck, instructions=N)
        assert first == second


class TestCheckpointApi:
    def test_cross_policy_fork_runs(self):
        """Shared-warmup approximation: fork under a different policy."""
        ck = warm_checkpoint("mcf", BASELINE, "OOO", warmup=W)
        r = simulate_from(ck, "RAR", instructions=N)
        assert r.policy == "RAR"
        # commit can overshoot by at most the commit width in the last cycle
        assert N <= r.instructions < N + BASELINE.core.width

    def test_capture_records_coordinates(self):
        ck = warm_checkpoint("x264", CORE1, "FLUSH", warmup=300, seed=5)
        assert ck.workload == "x264"
        assert ck.machine is CORE1
        assert ck.policy.name == "FLUSH"
        assert ck.warmup == 300 and ck.seed == 5

    def test_zero_warmup_checkpoint(self):
        ck = warm_checkpoint("x264", BASELINE, "OOO", warmup=0)
        r = simulate_from(ck, instructions=400)
        assert r == simulate("x264", BASELINE, "OOO", instructions=400,
                             warmup=0)

    def test_rejects_nonpositive_instructions(self):
        ck = warm_checkpoint("x264", BASELINE, "OOO", warmup=100)
        with pytest.raises(ValueError):
            simulate_from(ck, instructions=0)

    def test_fork_is_checkpoint_method(self):
        ck = warm_checkpoint("x264", BASELINE, "OOO", warmup=100)
        assert isinstance(ck, Checkpoint)
        core = ck.fork("RAR")
        assert core.policy.name == "RAR"
        assert core.stats.committed >= 100  # warmed state restored

    def test_telemetry_attaches_to_fork(self):
        from repro.obs import Telemetry
        ck = warm_checkpoint("mcf", BASELINE, "RAR", warmup=W)
        tel = Telemetry(interval=100)
        r = simulate_from(ck, instructions=N, telemetry=tel)
        assert len(tel.sampler.rows) >= 5
        payload = tel.stats_dict(r)
        assert payload["result"]["instructions"] == r.instructions


class TestSimResultRoundTrip:
    def test_to_dict_from_dict_identity(self):
        r = simulate("mcf", BASELINE, "RAR", instructions=600, warmup=200)
        assert SimResult.from_dict(r.to_dict()) == r

    def test_round_trip_survives_json(self):
        import json
        r = simulate("x264", BASELINE, "OOO", instructions=400, warmup=100)
        payload = json.loads(json.dumps(r.to_dict()))
        assert SimResult.from_dict(payload) == r

    def test_unknown_keys_rejected(self):
        r = simulate("x264", BASELINE, "OOO", instructions=400, warmup=100)
        payload = r.to_dict()
        payload["bogus_field"] = 1
        with pytest.raises(TypeError):
            SimResult.from_dict(payload)


class TestCheckpointCache:
    def test_warms_once_then_hits(self):
        from repro.checkpoint import CheckpointCache
        cache = CheckpointCache(capacity=2)
        a = cache.get_or_warm("mcf", BASELINE, "OOO", warmup=300)
        b = cache.get_or_warm("mcf", BASELINE, "OOO", warmup=300)
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)
        # a cached checkpoint measures bit-identically to a fresh one
        fresh = warm_checkpoint("mcf", BASELINE, "OOO", warmup=300)
        assert simulate_from(a, "RAR", instructions=500) == \
            simulate_from(fresh, "RAR", instructions=500)

    def test_key_pins_machine_policy_and_warmup(self):
        from repro.checkpoint import CheckpointCache
        cache = CheckpointCache(capacity=8)
        base = cache.get_or_warm("mcf", BASELINE, "OOO", warmup=300)
        assert cache.get_or_warm("mcf", CORE1, "OOO", warmup=300) \
            is not base
        assert cache.get_or_warm("mcf", BASELINE, "RAR", warmup=300) \
            is not base
        assert cache.get_or_warm("mcf", BASELINE, "OOO", warmup=400) \
            is not base
        assert cache.misses == 4 and cache.hits == 0

    def test_lru_eviction_bounds_memory(self):
        from repro.checkpoint import CheckpointCache
        cache = CheckpointCache(capacity=1)
        a = cache.get_or_warm("mcf", BASELINE, "OOO", warmup=300)
        cache.get_or_warm("x264", BASELINE, "OOO", warmup=300)
        assert len(cache) == 1  # mcf was evicted
        again = cache.get_or_warm("mcf", BASELINE, "OOO", warmup=300)
        assert again is not a and cache.misses == 3

    def test_process_cache_is_singleton(self):
        from repro.checkpoint import process_checkpoint_cache
        assert process_checkpoint_cache() is process_checkpoint_cache()
