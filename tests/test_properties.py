"""Property-based tests (hypothesis) on core data structures and invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import amean, gmean, hmean
from repro.common.params import CacheParams
from repro.memory.cache import Cache
from repro.reliability.ace import BlockedWindows

# ---------------------------------------------------------------- windows


@st.composite
def window_script(draw):
    """A sequence of monotone open/close events plus a query interval."""
    n = draw(st.integers(1, 12))
    t = 0
    events = []
    for _ in range(n):
        t += draw(st.integers(0, 20))
        start = t
        t += draw(st.integers(0, 20))
        events.append((start, t))
        t += 1
    a = draw(st.integers(0, t + 10))
    b = draw(st.integers(0, t + 10))
    return events, a, b


class TestBlockedWindowsProperties:
    @given(window_script())
    @settings(max_examples=200, deadline=None)
    def test_overlap_matches_naive_reference(self, script):
        events, a, b = script
        w = BlockedWindows()
        covered = set()
        for s, e in events:
            w.open(s)
            w.close(e)
            covered.update(range(s, e))
        expected = len([c for c in covered if a <= c < b])
        assert w.overlap(a, b) == expected

    @given(window_script())
    @settings(max_examples=100, deadline=None)
    def test_total_time_equals_full_overlap(self, script):
        events, _, _ = script
        w = BlockedWindows()
        for s, e in events:
            w.open(s)
            w.close(e)
        horizon = max((e for _, e in events), default=0) + 1
        assert w.overlap(0, horizon) == w.total_time

    @given(window_script(), st.integers(0, 300))
    @settings(max_examples=100, deadline=None)
    def test_overlap_additive_in_query_split(self, script, mid):
        events, a, b = script
        if b < a:
            a, b = b, a
        mid = min(max(mid, a), b)
        w = BlockedWindows()
        for s, e in events:
            w.open(s)
            w.close(e)
        assert w.overlap(a, b) == w.overlap(a, mid) + w.overlap(mid, b)


# ------------------------------------------------------------------ cache


class _ReferenceCache:
    """Dead-simple LRU model to differential-test the real cache."""

    def __init__(self, sets, assoc, line):
        self.sets = sets
        self.assoc = assoc
        self.line = line
        self.data = {i: [] for i in range(sets)}

    def _key(self, addr):
        ln = addr // self.line
        return ln % self.sets, ln // self.sets

    def lookup(self, addr):
        s, t = self._key(addr)
        if t in self.data[s]:
            self.data[s].remove(t)
            self.data[s].append(t)
            return True
        return False

    def insert(self, addr):
        s, t = self._key(addr)
        if t in self.data[s]:
            self.data[s].remove(t)
        elif len(self.data[s]) >= self.assoc:
            self.data[s].pop(0)
        self.data[s].append(t)


class TestCacheMatchesReference:
    @given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_differential(self, ops):
        real = Cache(CacheParams(size=4 * 4 * 64, assoc=4, latency=1), "t")
        ref = _ReferenceCache(sets=4, assoc=4, line=64)
        for line_no, is_insert in ops:
            addr = line_no * 64
            if is_insert:
                real.insert(addr)
                ref.insert(addr)
            else:
                assert real.lookup(addr) == ref.lookup(addr)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_insert_then_contains(self, addrs):
        c = Cache(CacheParams(size=64 * 1024, assoc=8, latency=1), "t")
        c.insert(addrs[-1])
        assert c.contains(addrs[-1])


# ------------------------------------------------------------------ means


class TestMeanProperties:
    @given(st.lists(st.floats(0.01, 1e4), min_size=1, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_ordering(self, vals):
        assert hmean(vals) <= gmean(vals) * (1 + 1e-9)
        assert gmean(vals) <= amean(vals) * (1 + 1e-9)

    @given(st.lists(st.floats(0.01, 1e4), min_size=1, max_size=30),
           st.floats(0.01, 100))
    @settings(max_examples=100, deadline=None)
    def test_gmean_scale_invariance(self, vals, k):
        import pytest
        assert gmean([v * k for v in vals]) == \
            pytest.approx(gmean(vals) * k, rel=1e-6)

    @given(st.floats(0.01, 1e4), st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_constant_sequences(self, v, n):
        import pytest
        for fn in (amean, hmean, gmean):
            assert fn([v] * n) == pytest.approx(v, rel=1e-9)


# ------------------------------------------------------------------ trace


class TestTraceProperties:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_generated_trace_wellformed(self, seed):
        """Any seed yields a trace whose producers precede consumers and
        whose memory ops carry addresses."""
        from repro.common.enums import UopClass
        from repro.workloads.catalog import get_workload
        t = get_workload("soplex").build_trace(seed=seed)
        for i in range(300):
            u = t.get(i)
            assert all(0 <= s < i for s in u.srcs)
            if u.cls in (int(UopClass.LOAD), int(UopClass.STORE)):
                assert u.addr >= 0
            else:
                assert u.addr == -1


# ------------------------------------------------------------------ dram


class TestDramProperties:
    @given(st.lists(st.tuples(st.integers(0, 1 << 22), st.integers(0, 5)),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_completion_after_arrival(self, reqs):
        from repro.common.params import DramParams
        from repro.memory.dram import Dram
        d = Dram(DramParams())
        t = 0
        for addr, gap in reqs:
            t += gap
            done = d.access(addr * 64, t)
            assert done >= t + d.params.row_hit_latency

    @given(st.lists(st.integers(0, 1 << 22), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_bus_never_double_booked(self, addrs):
        from repro.common.params import DramParams
        from repro.memory.dram import Dram
        d = Dram(DramParams())
        times = sorted(d.access(a * 64, 0) for a in addrs)
        for a, b in zip(times, times[1:]):
            assert b - a >= d.params.bus_cycles_per_access
