"""Mop-up edge coverage across modules."""

import pytest

from repro.common.enums import UopClass
from repro.common.params import BASELINE
from repro.isa.trace import Trace
from repro.isa.uop import StaticUop


class TestTraceFactory:
    def test_from_factory(self):
        def gen():
            for i in range(5):
                yield StaticUop(idx=i, pc=4 * i, cls=int(UopClass.INT_ADD))
        t = Trace.from_factory(gen, name="gen")
        assert t.name == "gen"
        assert t.get(4).idx == 4
        assert t.get(5) is None


class TestWorkloadGeneratorEdges:
    def test_unknown_branch_kind_raises(self):
        from repro.workloads.base import BranchSpec, SlotSpec, WorkloadSpec
        spec = WorkloadSpec(
            name="bad", memory_intensive=False,
            body=(SlotSpec(cls=int(UopClass.BRANCH),
                           branch=BranchSpec(kind="psychic")),),
            patterns={},
        )
        with pytest.raises(ValueError, match="unknown branch kind"):
            spec.build_trace().get(0)

    def test_first_iteration_drops_cross_iteration_deps(self):
        from repro.workloads.base import SlotSpec, WorkloadSpec
        spec = WorkloadSpec(
            name="x", memory_intensive=False,
            body=(
                SlotSpec(cls=int(UopClass.INT_ADD)),
                SlotSpec(cls=int(UopClass.INT_ADD), srcs=((1, 0),)),
            ),
            patterns={},
        )
        t = spec.build_trace()
        assert t.get(1).srcs == ()       # iteration 0: no previous iter
        assert t.get(3).srcs == (0,)     # iteration 1: reads iter-0 slot 0


class TestHierarchyEdges:
    def test_probe_reports_outstanding_line(self):
        from repro.memory.hierarchy import MemoryHierarchy
        m = MemoryHierarchy(BASELINE)
        m.access(0x5000_0000, 0)
        assert m.probe_level(0x5000_0000) == "dram"  # still in flight

    def test_unlimited_mshrs_when_zero(self):
        from dataclasses import replace
        from repro.memory.hierarchy import MemoryHierarchy
        machine = replace(BASELINE, l1d=replace(BASELINE.l1d, mshrs=0),
                          name="nolimit")
        m = MemoryHierarchy(machine)
        for i in range(64):
            assert m.access(0x5000_0000 + 64 * i, 0) is not None


class TestRobTick:
    def test_tick_timer_is_single_cycle_advance(self):
        from repro.core.rob import ReorderBuffer
        from repro.isa.uop import DynUop
        rob = ReorderBuffer(size=4, timer_init=3)
        rob.push(DynUop(StaticUop(idx=0, pc=0, cls=1), seq=1))
        rob.tick_timer()
        rob.tick_timer()
        rob.tick_timer()
        assert not rob.head_timer_expired
        rob.tick_timer()
        assert rob.head_timer_expired


class TestSimResultEdges:
    def test_mpki_and_relatives(self):
        from repro.sim import SimResult
        r = SimResult(workload="w", machine="m", policy="p",
                      instructions=1000, cycles=2000, ipc=0.5, mlp=1.0,
                      mpki=10.0, abc={"rob": 100}, abc_total=100,
                      total_bits=1000)
        assert r.avf == 100 / (1000 * 2000)
        base = SimResult(workload="w", machine="m", policy="OOO",
                         instructions=1000, cycles=1000, ipc=1.0, mlp=1.0,
                         mpki=10.0, abc={"rob": 400}, abc_total=400,
                         total_bits=1000)
        assert r.abc_rel(base) == 0.25
        assert r.ipc_rel(base) == 0.5
        # slower run + lower ABC: MTTF improves by 4x (ABC) x2 (time) = 8x
        assert r.mttf_rel(base) == pytest.approx(8.0)


class TestGoldenDeterminism:
    def test_golden_run_stays_stable(self):
        """Golden regression anchor: a fixed tiny run's aggregate results
        should only change when simulator behaviour genuinely changes.
        (Loose bounds: catch gross regressions, tolerate refactors.)"""
        from repro import OOO, simulate
        r = simulate("x264", BASELINE, OOO, instructions=1000, warmup=500)
        assert 0.5 < r.ipc < 3.5
        assert 0 <= r.mpki < 8
        assert r.abc_total > 0
        assert 0.0 < r.avf < 0.8
