"""Top-level simulate() API."""

import pytest

from repro import BASELINE, OOO, RAR, SimResult, get_workload, simulate


class TestSimulateApi:
    def test_by_name(self):
        r = simulate("x264", BASELINE, OOO, instructions=800, warmup=300)
        assert r.workload == "x264"
        assert r.policy == "OOO"
        assert r.machine == "baseline"
        assert r.instructions >= 800
        assert r.cycles > 0
        assert r.ipc > 0

    def test_by_spec_and_policy_name(self):
        r = simulate(get_workload("x264"), BASELINE, "rar",
                     instructions=800, warmup=300)
        assert r.policy == "RAR"

    def test_invalid_instructions(self):
        with pytest.raises(ValueError):
            simulate("x264", BASELINE, OOO, instructions=0)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            simulate("quake", BASELINE, OOO, instructions=100)

    def test_abc_structures_present(self):
        r = simulate("x264", BASELINE, OOO, instructions=800, warmup=300)
        assert set(r.abc) == {"rob", "iq", "lq", "sq", "rf", "fu"}
        assert r.abc_total == sum(r.abc.values())
        assert all(v >= 0 for v in r.abc.values())

    def test_warmup_excluded_from_counters(self):
        full = simulate("x264", BASELINE, OOO, instructions=800, warmup=0)
        warm = simulate("x264", BASELINE, OOO, instructions=800, warmup=800)
        # Measured window sizes match even though total work differs.
        assert abs(warm.instructions - full.instructions) <= 4

    def test_determinism(self):
        a = simulate("x264", BASELINE, OOO, instructions=800, warmup=300)
        b = simulate("x264", BASELINE, OOO, instructions=800, warmup=300)
        assert a.cycles == b.cycles
        assert a.abc_total == b.abc_total
        assert a.ipc == b.ipc


class TestSeedHandling:
    def test_same_seed_identical_result(self):
        for seed in (0, 7):
            a = simulate("mcf", BASELINE, RAR, instructions=600,
                         warmup=300, seed=seed)
            b = simulate("mcf", BASELINE, RAR, instructions=600,
                         warmup=300, seed=seed)
            assert a == b, f"seed={seed} not deterministic"

    def test_seed_zero_is_a_real_seed(self):
        # seed=0 must not be conflated with seed=None (the workload's
        # default seed, 12345): the traces they generate differ.
        zero = simulate("mcf", BASELINE, RAR, instructions=600,
                        warmup=300, seed=0)
        default = simulate("mcf", BASELINE, RAR, instructions=600,
                           warmup=300, seed=None)
        assert (zero.cycles, zero.abc_total) != \
            (default.cycles, default.abc_total)

    def test_different_seeds_diverge(self):
        a = simulate("mcf", BASELINE, RAR, instructions=600,
                     warmup=300, seed=1)
        b = simulate("mcf", BASELINE, RAR, instructions=600,
                     warmup=300, seed=2)
        assert (a.cycles, a.abc_total) != (b.cycles, b.abc_total)


class TestSimResultDerived:
    def _pair(self):
        base = simulate("x264", BASELINE, OOO, instructions=800, warmup=300)
        rar = simulate("x264", BASELINE, RAR, instructions=800, warmup=300)
        return base, rar

    def test_relative_metrics(self):
        base, rar = self._pair()
        assert base.mttf_rel(base) == pytest.approx(1.0)
        assert base.abc_rel(base) == pytest.approx(1.0)
        assert base.ipc_rel(base) == pytest.approx(1.0)
        assert rar.mttf_rel(base) > 0
        assert rar.abc_rel(base) > 0

    def test_avf_in_unit_interval(self):
        base, _ = self._pair()
        assert 0 < base.avf < 1

    def test_avf_guarded_against_empty_volume(self):
        empty = SimResult(workload="w", machine="m", policy="p",
                          instructions=0, cycles=0, ipc=0.0, mlp=0.0,
                          mpki=0.0)
        assert empty.avf == 0.0  # cycles == 0 and total_bits == 0
        no_bits = SimResult(workload="w", machine="m", policy="p",
                            instructions=10, cycles=100, ipc=0.1, mlp=0.0,
                            mpki=0.0, abc_total=5, total_bits=0)
        assert no_bits.avf == 0.0

    def test_result_is_frozen(self):
        base, _ = self._pair()
        with pytest.raises(AttributeError):
            base.ipc = 2.0
