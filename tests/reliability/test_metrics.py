"""Reliability metric equations (Section IV-B)."""

import pytest

from repro.reliability.metrics import (
    ReliabilityReport,
    abc_total,
    avf,
    fit,
    mttf_relative,
    normalized_abc,
)


class TestEquations:
    def test_abc_total(self):
        assert abc_total({"rob": 10, "iq": 5}) == 15

    def test_avf_bounds(self):
        assert avf(0, 100, 10) == 0.0
        assert avf(1000, 100, 10) == 1.0
        assert avf(500, 100, 10) == 0.5

    def test_avf_validates(self):
        with pytest.raises(ValueError):
            avf(1, 0, 10)
        with pytest.raises(ValueError):
            avf(1, 10, 0)

    def test_fit_proportional_to_avf(self):
        assert fit(0.5, raw_error_rate=2.0) == 1.0

    def test_mttf_identity_baseline(self):
        assert mttf_relative(100, 10, 100, 10) == 1.0

    def test_mttf_improves_with_lower_abc(self):
        # Half the ABC at the same runtime: twice the MTTF.
        assert mttf_relative(100, 10, 50, 10) == 2.0

    def test_mttf_accounts_for_runtime(self):
        # Same ABC but faster: AVF rises, MTTF drops (eq. 2-4).
        assert mttf_relative(100, 10, 100, 5) == 0.5

    def test_mttf_infinite_when_variant_abc_zero(self):
        assert mttf_relative(100, 10, 0, 10) == float("inf")

    def test_normalized_abc(self):
        assert normalized_abc(200, 50) == 0.25
        with pytest.raises(ValueError):
            normalized_abc(0, 50)


class TestReliabilityReport:
    def test_from_runs(self):
        rep = ReliabilityReport.from_runs(
            base_abc=1000, base_cycles=100, abc=200, cycles=120,
            total_bits=10_000)
        assert rep.abc_rel == 0.2
        assert rep.abc_improvement_pct == pytest.approx(80.0)
        assert rep.mttf_rel == pytest.approx((1000 * 120) / (200 * 100))
        assert rep.avf == pytest.approx(200 / (10_000 * 120))

    def test_paper_style_numbers(self):
        """RAR-like point: ABC -81.4%, runtime 1/1.335 of baseline."""
        rep = ReliabilityReport.from_runs(
            base_abc=1_000_000, base_cycles=1335, abc=186_000, cycles=1000,
            total_bits=1 << 16)
        assert 3.5 < rep.mttf_rel < 4.5
