"""Windowed AVF timeline."""

import pytest

from repro.reliability.timeline import avf_timeline


class TestTimeline:
    def test_single_interval_one_window(self):
        # 10 bits exposed for cycles [0, 50) of a 100-cycle window,
        # N = 100 bits -> AVF = 10*50/(100*100) = 0.05
        series = avf_timeline([("rob", 0, 50, 10)], total_bits=100,
                              cycles=100, window=100)
        assert series == [(0, pytest.approx(0.05))]

    def test_interval_split_across_windows(self):
        series = avf_timeline([("rob", 50, 150, 10)], total_bits=100,
                              cycles=200, window=100)
        assert series[0] == (0, pytest.approx(10 * 50 / (100 * 100)))
        assert series[1] == (100, pytest.approx(10 * 50 / (100 * 100)))

    def test_sum_matches_total_abc(self):
        intervals = [("rob", 3, 97, 7), ("iq", 40, 260, 5),
                     ("rf", 150, 151, 64)]
        cycles, n = 300, 1000
        series = avf_timeline(intervals, n, cycles, window=64)
        total_from_series = sum(
            avf * n * min(64, cycles - start) for start, avf in series)
        expected = sum(b * (e - s) for _, s, e, b in intervals)
        assert total_from_series == pytest.approx(expected)

    def test_interval_clipped_to_run(self):
        series = avf_timeline([("rob", -10, 500, 2)], total_bits=10,
                              cycles=100, window=100)
        assert series[0][1] == pytest.approx(2 * 100 / (10 * 100))

    def test_window_count(self):
        series = avf_timeline([], 10, 1050, window=100)
        assert len(series) == 11
        assert series[-1][0] == 1000
        assert all(avf == 0 for _, avf in series)

    def test_validation(self):
        with pytest.raises(ValueError):
            avf_timeline([], 10, 100, window=0)
        with pytest.raises(ValueError):
            avf_timeline([], 0, 100)

    def test_phase_behaviour_from_simulation(self):
        """A memory-bound run must show heterogeneous AVF across windows."""
        from repro.common.params import BASELINE
        from repro.core.core import OutOfOrderCore
        from repro.core.runahead import OOO
        from repro.workloads.catalog import get_workload
        spec = get_workload("libquantum")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), OOO,
                              record_ace_intervals=True)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        core.run(2500)
        series = avf_timeline(core.ace.intervals,
                              BASELINE.core.total_bits, core.cycle,
                              window=500)
        values = [v for _, v in series]
        assert max(values) > 0
        assert max(values) > 2 * min(values)  # visible phases
