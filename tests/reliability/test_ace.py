"""ACE accounting: per-structure charges and attribution windows."""


from repro.common.enums import UopClass
from repro.common.params import BIT_BUDGET
from repro.isa.uop import DynUop, StaticUop
from repro.reliability.ace import AceAccountant, BlockedWindows


def accountant():
    return AceAccountant(fu_exec_cycles=lambda cls: 2)


def committed(cls, dispatch=10, issue=20, done=30, commit=100, seq=1):
    u = DynUop(StaticUop(idx=seq, pc=0, cls=int(cls), addr=0x40), seq=seq)
    u.dispatch_cycle = dispatch
    u.issue_cycle = issue
    u.done_cycle = done
    u.commit_cycle = commit
    u.completed = True
    return u


class TestChargeCommit:
    def test_alu_charges(self):
        a = accountant()
        a.charge_commit(committed(UopClass.INT_ADD))
        assert a.bits["rob"] == BIT_BUDGET["rob"] * 90   # dispatch->commit
        assert a.bits["iq"] == BIT_BUDGET["iq"] * 10     # dispatch->issue
        assert a.bits["rf"] == BIT_BUDGET["int_reg"] * 70  # done->commit
        assert a.bits["fu"] == BIT_BUDGET["int_fu"] * 2
        assert a.bits["lq"] == a.bits["sq"] == 0

    def test_load_charges_lq(self):
        a = accountant()
        a.charge_commit(committed(UopClass.LOAD))
        assert a.bits["lq"] == BIT_BUDGET["lq"] * 80  # issue->commit
        assert a.bits["sq"] == 0

    def test_store_charges_sq_and_no_rf(self):
        a = accountant()
        a.charge_commit(committed(UopClass.STORE))
        assert a.bits["sq"] == BIT_BUDGET["sq"] * 80
        assert a.bits["rf"] == 0

    def test_fp_uses_wide_budgets(self):
        a = accountant()
        a.charge_commit(committed(UopClass.FP_MUL))
        assert a.bits["rf"] == BIT_BUDGET["fp_reg"] * 70
        assert a.bits["fu"] == BIT_BUDGET["fp_fu"] * 2

    def test_nop_is_unace(self):
        a = accountant()
        a.charge_commit(committed(UopClass.NOP))
        assert a.total == 0

    def test_cmp_has_no_rf_charge(self):
        a = accountant()
        a.charge_commit(committed(UopClass.INT_CMP))
        assert a.bits["rf"] == 0
        assert a.bits["rob"] > 0

    def test_total_sums_structures(self):
        a = accountant()
        a.charge_commit(committed(UopClass.LOAD))
        assert a.total == sum(a.bits.values())
        assert a.committed_charged == 1


class TestBlockedWindows:
    def test_basic_overlap(self):
        w = BlockedWindows()
        w.open(10)
        w.close(20)
        assert w.overlap(0, 30) == 10
        assert w.overlap(12, 15) == 3
        assert w.overlap(5, 12) == 2
        assert w.overlap(18, 40) == 2
        assert w.overlap(20, 30) == 0

    def test_multiple_windows(self):
        w = BlockedWindows()
        for s, e in ((10, 20), (30, 40), (50, 60)):
            w.open(s)
            w.close(e)
        assert w.overlap(0, 100) == 30
        assert w.overlap(15, 55) == 5 + 10 + 5
        assert w.count == 3
        assert w.total_time == 30

    def test_open_window_counts(self):
        w = BlockedWindows()
        w.open(10)
        assert w.is_open
        assert w.overlap(0, 50) == 40

    def test_double_open_ignored(self):
        w = BlockedWindows()
        w.open(10)
        w.open(15)
        w.close(20)
        assert w.total_time == 10

    def test_close_without_open_ignored(self):
        w = BlockedWindows()
        w.close(10)
        assert w.count == 0

    def test_empty_window_dropped(self):
        w = BlockedWindows()
        w.open(10)
        w.close(10)
        assert w.count == 0

    def test_degenerate_query(self):
        w = BlockedWindows()
        w.open(10)
        w.close(20)
        assert w.overlap(15, 15) == 0
        assert w.overlap(18, 12) == 0


class TestAttribution:
    def test_charge_inside_window_attributed(self):
        a = accountant()
        a.head_blocked.open(0)
        a.head_blocked.close(200)
        a.charge_commit(committed(UopClass.INT_ADD))
        # The whole residency is inside the window (incl. 2 FU cycles).
        expected = (BIT_BUDGET["rob"] * 90 + BIT_BUDGET["iq"] * 10
                    + BIT_BUDGET["int_reg"] * 70 + BIT_BUDGET["int_fu"] * 2)
        assert a.bits_in_head_blocked == expected

    def test_charge_outside_window_not_attributed(self):
        a = accountant()
        a.head_blocked.open(500)
        a.head_blocked.close(700)
        a.charge_commit(committed(UopClass.INT_ADD))
        assert a.bits_in_head_blocked == 0

    def test_partial_overlap(self):
        a = accountant()
        a.head_blocked.open(50)
        a.head_blocked.close(60)
        a.charge_commit(committed(UopClass.INT_ADD, dispatch=0, issue=10,
                                  done=20, commit=100))
        # ROB interval [0,100) overlaps 10; IQ [0,10) overlaps 0;
        # RF [20,100) overlaps 10.
        expected = BIT_BUDGET["rob"] * 10 + BIT_BUDGET["int_reg"] * 10
        assert a.bits_in_head_blocked == expected

    def test_full_stall_tracked_separately(self):
        a = accountant()
        a.full_stall.open(0)
        a.full_stall.close(1000)
        a.charge_commit(committed(UopClass.INT_ADD))
        assert a.bits_in_full_stall > 0
        assert a.bits_in_head_blocked == 0
