"""Monte-Carlo fault injection and its agreement with ACE analysis."""

import pytest

from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.runahead import OOO, RAR
from repro.reliability.fault_injection import (
    FaultInjector,
    InjectionResult,
    _LiveBits,
    structure_bits,
)
from repro.workloads.catalog import get_workload


def run_recording(workload="libquantum", policy=OOO, instructions=2500):
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(), policy,
                          record_ace_intervals=True)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    core.run(instructions)
    return core


class TestLiveBits:
    def test_levels(self):
        lb = _LiveBits([(10, 20, 5), (15, 30, 3)])
        assert lb.live(5) == 0
        assert lb.live(10) == 5
        assert lb.live(15) == 8
        assert lb.live(20) == 3
        assert lb.live(29) == 3
        assert lb.live(30) == 0

    def test_empty(self):
        assert _LiveBits([]).live(100) == 0


class TestStructureBits:
    def test_matches_total(self):
        bits = structure_bits(BASELINE.core)
        assert sum(bits.values()) == BASELINE.core.total_bits
        assert bits["rob"] == 192 * 120
        assert bits["fu"] == 0  # FUs are not in the AVF denominator


class TestInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector([], BASELINE.core, cycles=0)
        inj = FaultInjector([], BASELINE.core, cycles=100)
        with pytest.raises(ValueError):
            inj.run(trials=0)

    def test_deterministic_given_seed(self):
        core = run_recording()
        a = FaultInjector(core.ace.intervals, BASELINE.core, core.cycle,
                          seed=7).run(2000)
        b = FaultInjector(core.ace.intervals, BASELINE.core, core.cycle,
                          seed=7).run(2000)
        assert a.hits == b.hits
        assert a.hits_by_structure == b.hits_by_structure

    def test_no_intervals_no_hits(self):
        inj = FaultInjector([], BASELINE.core, cycles=1000, seed=3)
        assert inj.run(500).hits == 0

    def test_empirical_avf_matches_analytical(self):
        """The campaign must converge to ABC/(N×T) (FU charges excluded
        from both sides — FUs are not in the strike space)."""
        core = run_recording()
        abc_no_fu = core.ace.total - core.ace.bits["fu"]
        analytical = abc_no_fu / (BASELINE.core.total_bits * core.cycle)
        inj = FaultInjector(core.ace.intervals, BASELINE.core, core.cycle,
                            seed=11)
        result = inj.run(40_000)
        assert result.empirical_avf == pytest.approx(analytical, rel=0.12)

    def test_rar_reduces_empirical_vulnerability(self):
        base = run_recording(policy=OOO)
        rar = run_recording(policy=RAR)
        fi_base = FaultInjector(base.ace.intervals, BASELINE.core,
                                base.cycle, seed=5).run(20_000)
        fi_rar = FaultInjector(rar.ace.intervals, BASELINE.core,
                               rar.cycle, seed=5).run(20_000)
        assert fi_rar.empirical_avf < fi_base.empirical_avf * 0.5

    def test_structure_weighting(self):
        core = run_recording(instructions=1500)
        result = FaultInjector(core.ace.intervals, BASELINE.core,
                               core.cycle, seed=9).run(20_000)
        bits = structure_bits(BASELINE.core)
        total = sum(bits.values())
        rob_share = result.trials_by_structure.get("rob", 0) / result.trials
        assert rob_share == pytest.approx(bits["rob"] / total, abs=0.03)

    def test_result_properties(self):
        r = InjectionResult(trials=100, hits=25,
                            hits_by_structure={"rob": 25},
                            trials_by_structure={"rob": 50})
        assert r.empirical_avf == 0.25
        assert r.structure_avf("rob") == 0.5
        assert r.structure_avf("iq") == 0.0


class TestEdgeCases:
    def test_zero_length_intervals_contribute_nothing(self):
        """An [c, c) interval opens and closes at the same cycle: its
        +bits/-bits deltas cancel, so no strike can ever land in it."""
        lb = _LiveBits([(50, 50, 120), (70, 70, 64)])
        for c in (0, 49, 50, 51, 70, 100):
            assert lb.live(c) == 0
        intervals = [("rob", 50, 50, 120), ("iq", 70, 70, 80)]
        inj = FaultInjector(intervals, BASELINE.core, cycles=100, seed=2)
        assert inj.run(2000).hits == 0

    def test_strike_at_final_cycle(self):
        """Intervals are half-open: cycle T-1 of an interval ending at T
        is vulnerable, cycle T is not — a strike drawn at the last
        simulated cycle (randrange's maximum) must see the right state."""
        bits = structure_bits(BASELINE.core)
        T = 4
        lb = _LiveBits([(T - 1, T, bits["rob"])])
        assert lb.live(T - 1) == bits["rob"]
        assert lb.live(T) == 0
        inj = FaultInjector([("rob", T - 1, T, bits["rob"])],
                            BASELINE.core, cycles=T, seed=3)
        result = inj.run(4000)
        # The ROB is fully ACE for 1 of 4 cycles: every rob-strike in
        # that cycle hits, nothing else ever does.
        rob_trials = result.trials_by_structure["rob"]
        assert result.hits == result.hits_by_structure.get("rob", 0)
        assert result.hits == pytest.approx(rob_trials / T, rel=0.25)

    def test_per_structure_empirical_matches_analytical(self):
        """structure_avf must converge per structure, not just in
        aggregate — a mis-weighted sampler could pass the total while
        over-charging one structure and under-charging another."""
        core = run_recording()
        bits = structure_bits(BASELINE.core)
        result = FaultInjector(core.ace.intervals, BASELINE.core,
                               core.cycle, seed=13).run(60_000)
        checked = 0
        for s in ("rob", "iq", "lq", "sq", "rf"):
            analytical = core.ace.bits[s] / (bits[s] * core.cycle)
            if result.trials_by_structure.get(s, 0) < 2000:
                continue  # too few samples for a tolerance claim
            assert result.structure_avf(s) == pytest.approx(
                analytical, rel=0.25, abs=0.01), s
            checked += 1
        assert checked >= 3  # the big structures must all be sampled
