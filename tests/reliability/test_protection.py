"""What-if protection modelling."""

import pytest

from repro.reliability.protection import (
    PROTECTION_COSTS,
    ProtectionPlan,
    cheapest_plan_for_target,
    mttf_gain,
    rank_single_structures,
    residual_abc,
)

ABC = {"rob": 600, "iq": 100, "lq": 150, "sq": 50, "rf": 90, "fu": 10}


class TestPlan:
    def test_of_and_validation(self):
        plan = ProtectionPlan.of("rob", "iq")
        assert plan.structures == {"rob", "iq"}
        with pytest.raises(ValueError):
            ProtectionPlan.of("tlb")

    def test_area_overhead_sums(self):
        plan = ProtectionPlan.of("rob", "lq")
        assert plan.area_overhead == pytest.approx(
            PROTECTION_COSTS["rob"]["area"] + PROTECTION_COSTS["lq"]["area"])

    def test_latency_criticality(self):
        assert ProtectionPlan.of("rob").touches_cycle_time
        assert not ProtectionPlan.of("lq", "sq").touches_cycle_time


class TestResiduals:
    def test_residual_abc(self):
        assert residual_abc(ABC, ProtectionPlan.of("rob")) == 400
        assert residual_abc(ABC, ProtectionPlan.of()) == 1000

    def test_mttf_gain(self):
        assert mttf_gain(ABC, ProtectionPlan.of("rob")) == pytest.approx(2.5)
        assert mttf_gain(ABC, ProtectionPlan.of()) == 1.0

    def test_full_protection_infinite(self):
        plan = ProtectionPlan.of(*ABC.keys())
        assert mttf_gain(ABC, plan) == float("inf")

    def test_rank(self):
        assert list(rank_single_structures(ABC))[:2] == ["rob", "lq"]


class TestCheapestPlan:
    def test_trivial_target(self):
        assert cheapest_plan_for_target(ABC, 1.0).structures == frozenset()

    def test_meets_target(self):
        plan = cheapest_plan_for_target(ABC, 2.0)
        assert mttf_gain(ABC, plan) >= 2.0
        # Should pick the big-payoff structure first, not everything.
        assert "rob" in plan.structures
        assert len(plan.structures) <= 3

    def test_unreachable_raises(self):
        with pytest.raises(ValueError):
            cheapest_plan_for_target({"rob": 0, "iq": 0}, 2.0)

    def test_on_simulated_abc(self):
        """On a real memory-bound run, protecting the ROB alone is the
        single best lever — consistent with Figure 3's stacks."""
        from repro import BASELINE, OOO, simulate
        r = simulate("libquantum", BASELINE, OOO,
                     instructions=1500, warmup=2500)
        ranked = list(rank_single_structures(r.abc))
        assert ranked[0] == "rob"
        assert mttf_gain(r.abc, ProtectionPlan.of("rob")) > 1.5
