"""Example scripts: importable, documented, and runnable (smoke)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


def load(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamples:
    def test_expected_set_present(self):
        for required in ("quickstart.py", "design_space.py",
                         "custom_workload.py", "reliability_report.py",
                         "scaling_study.py", "fault_injection.py",
                         "ascii_figures.py", "pipeline_trace.py"):
            assert required in EXAMPLES

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_importable_with_docstring_and_main(self, name):
        mod = load(name)
        assert mod.__doc__ and "Usage" in mod.__doc__
        assert callable(getattr(mod, "main", None))

    def test_quickstart_runs_small(self, capsys, monkeypatch):
        mod = load("quickstart.py")
        monkeypatch.setattr(sys, "argv", ["quickstart.py", "x264", "800"])
        mod.main()
        out = capsys.readouterr().out
        assert "MTTF vs OoO" in out

    def test_custom_workload_builds(self):
        mod = load("custom_workload.py")
        spec = mod.build_workload()
        assert spec.name == "custom-hybrid"
        assert spec.build_trace().get(50) is not None
